/**
 * @file
 * The heterogeneous configuration space and its convexity pruner.
 *
 * A big.LITTLE topology turns the paper's (CPU level × bandwidth level)
 * grid into a four-axis cross-product (big level × LITTLE level ×
 * bandwidth level × placement) — 7·6·8·3 ≈ 1000 points on an
 * Exynos 5433-class part, an order of magnitude more than the 18-point
 * Nexus 6 grid the offline profiler was sized for. Most of it is provably
 * wasted work: for a fixed workload, a cluster's operating point with
 * energy-per-cycle e(f) = P(f)/f strictly above the lower convex hull of
 * the cluster's (f, P) curve is *energy-dominated* — time-mixing the two
 * neighbouring hull OPPs delivers the same average throughput for less
 * energy, and the schedule LP (4)–(7) mixes configurations in time anyway.
 * So only hull levels can appear in an optimal schedule, and the
 * cross-product needs to enumerate ≤ O(hull_big × hull_little) frequency
 * pairs instead of all n_big × n_little.
 *
 * ConvexHullLevels implements the pruning walk (Andrew monotone chain on
 * the per-cluster power curve); EnumerateHetConfigs builds the pruned —
 * or, for the oracle tests, exhaustive — candidate list as SystemConfigs
 * ready for the profiler and optimizer. The randomized property test in
 * tests/core/het_config_space_test.cc proves the pruned optimizer
 * bit-identical to the brute-force pair search on 1000 seeded tables.
 */
#ifndef AEO_CORE_HET_CONFIG_SPACE_H_
#define AEO_CORE_HET_CONFIG_SPACE_H_

#include <vector>

#include "common/system_config.h"
#include "power/power_model.h"
#include "soc/cluster_topology.h"

namespace aeo {

/** Enumeration options for the heterogeneous candidate grid. */
struct HetSpaceOptions {
    /**
     * Prune each cluster's frequency ladder to the lower convex hull of its
     * (frequency, full-load power) curve before taking the cross-product.
     * Off = exhaustive enumeration (the oracle the property tests compare
     * against).
     */
    bool prune_convex = true;
    /** Bandwidth levels to include; empty = every level of the table. */
    std::vector<int> bw_levels;
    /** Placements to include; empty = the topology's admissible set. */
    std::vector<ThreadPlacement> placements;
};

/**
 * 0-based level indices (ascending) on the lower convex hull of the curve
 * {(freq_at(i), power_at(i))}. The first and last level are always kept;
 * an interior level survives only if it lies strictly below the segment
 * joining its hull neighbours. @p freq_at must be strictly increasing.
 */
std::vector<int> ConvexHullLevels(int size, const std::vector<double>& freq_at,
                                  const std::vector<double>& power_at);

/**
 * @p cluster's full-load CPU power at every OPP (all cores online and
 * busy, reference temperature) under @p model — the power curve the
 * convexity pruner walks.
 */
std::vector<double> ClusterPowerCurve(const PowerModel& model,
                                      const ClusterSpec& cluster);

/** The hull-pruned frequency levels of @p cluster under @p model. */
std::vector<int> ConvexPrunedLevels(const PowerModel& model,
                                    const ClusterSpec& cluster);

/**
 * The candidate configuration grid for @p topology: the (big × LITTLE ×
 * bandwidth × placement) cross-product on big.LITTLE, the legacy
 * (cpu × bandwidth) grid on a homogeneous topology (little_level and
 * placement keep their sentinel defaults there, so the resulting configs
 * are byte-compatible with the historical grid). Order: big level
 * outermost, then LITTLE, bandwidth, placement — ascending each.
 */
std::vector<SystemConfig> EnumerateHetConfigs(const ClusterTopology& topology,
                                              const PowerModel& model,
                                              const HetSpaceOptions& options = {});

}  // namespace aeo

#endif  // AEO_CORE_HET_CONFIG_SPACE_H_
