#include "core/batch_runner.h"

#include <thread>

#include "common/logging.h"

namespace aeo {

int
ResolveJobs(const BatchOptions& options)
{
    if (options.jobs > 0) {
        return options.jobs;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

BatchRunner::BatchRunner(BatchOptions options) : jobs_(ResolveJobs(options))
{
    AEO_ASSERT(jobs_ >= 1, "batch runner needs at least one job");
}

}  // namespace aeo
