/**
 * @file
 * The energy optimizer (§III-B3, equations (4)–(7)): given the required
 * speedup s_n and the profile table, pick per-configuration dwell times
 * minimizing energy over the control cycle subject to the performance and
 * budget constraints.
 *
 * As the paper notes, an optimal solution exists with at most two non-zero
 * dwell times, for configurations c_l, c_h bracketing the required speedup
 * (Fig. 3). Three interchangeable backends implement the optimization:
 *
 *  - kConvexHull: the efficient geometric solution — optimal schedules lie
 *    on the lower convex hull of the (speedup, power) point set;
 *  - kPairSearch: the paper's O(N²) enumeration of bracketing pairs;
 *  - kSimplex:    the LP (4)–(7) solved by the general simplex solver.
 *
 * Property tests assert all three agree; the controller uses kConvexHull.
 */
#ifndef AEO_CORE_ENERGY_OPTIMIZER_H_
#define AEO_CORE_ENERGY_OPTIMIZER_H_

#include <vector>

#include "common/static_vector.h"
#include "core/profile_table.h"

namespace aeo {

/** One scheduled dwell: a profile-table row and its duration. */
struct ScheduleSlot {
    /** Index into ProfileTable::entries(). */
    size_t entry_index = 0;
    /** Dwell time, seconds. */
    double seconds = 0.0;
};

/**
 * The dwell slots of one schedule. The LP (4)–(7) provably admits an
 * optimum with at most two non-zero dwells (configurations bracketing the
 * required speedup, Fig. 3), so the storage is inline: building, copying
 * and replaying a schedule on the per-cycle control path allocates nothing.
 */
using ScheduleSlots = StaticVector<ScheduleSlot, 2>;

/** An energy-optimal control input u_n. */
struct ConfigSchedule {
    /** Non-zero dwells, in application order (lower speedup first). */
    ScheduleSlots slots;
    /** Expected average power over the cycle. */
    Milliwatts expected_power_mw;
    /** Expected average speedup over the cycle. */
    double expected_speedup = 0.0;
};

/** Optimizer backend selection. */
enum class OptimizerBackend {
    kConvexHull,
    kPairSearch,
    kSimplex,
};

/** Solves the per-cycle energy minimization over a profile table. */
class EnergyOptimizer {
  public:
    /**
     * @param table   Profile table; must outlive the optimizer.
     * @param backend Algorithm to use.
     */
    explicit EnergyOptimizer(const ProfileTable* table,
                             OptimizerBackend backend = OptimizerBackend::kConvexHull);

    /**
     * Computes the minimum-energy schedule achieving @p required_speedup on
     * average over @p cycle_seconds. Speedups outside the achievable range
     * are clamped to it (the integrator is clamped the same way).
     */
    ConfigSchedule Optimize(double required_speedup, double cycle_seconds) const;

    /** The backend in use. */
    OptimizerBackend backend() const { return backend_; }

    /** Indices of table rows on the lower convex hull (for inspection). */
    const std::vector<size_t>& hull_indices() const { return hull_; }

  private:
    ConfigSchedule OptimizeHull(double speedup, double cycle_seconds) const;
    ConfigSchedule OptimizePairs(double speedup, double cycle_seconds) const;
    ConfigSchedule OptimizeSimplex(double speedup, double cycle_seconds) const;

    ConfigSchedule MakePair(size_t low, size_t high, double speedup,
                            double cycle_seconds) const;

    const ProfileTable* table_;
    OptimizerBackend backend_;
    std::vector<size_t> hull_;
};

}  // namespace aeo

#endif  // AEO_CORE_ENERGY_OPTIMIZER_H_
