#include "core/energy_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math_util.h"
#include "lp/schedule_lp.h"

namespace aeo {

namespace {

/** Splits the cycle between two bracketing rows to hit the speedup exactly. */
void
SplitDwell(double s_low, double s_high, double required, double cycle_seconds,
           double* t_low, double* t_high)
{
    if (s_high <= s_low) {
        // Degenerate bracket: all time on one row.
        *t_low = cycle_seconds;
        *t_high = 0.0;
        return;
    }
    const double alpha = (required - s_low) / (s_high - s_low);
    *t_high = Clamp(alpha, 0.0, 1.0) * cycle_seconds;
    *t_low = cycle_seconds - *t_high;
}

}  // namespace

EnergyOptimizer::EnergyOptimizer(const ProfileTable* table, OptimizerBackend backend)
    : table_(table), backend_(backend)
{
    AEO_ASSERT(table_ != nullptr, "optimizer needs a profile table");

    // Precompute the lower convex hull of (speedup, power). Entries are
    // sorted by speedup; keep only points making a convex, power-increasing
    // lower boundary. Schedules mixing hull vertices dominate all others.
    const auto& entries = table_->entries();
    // First pass: for equal speedups keep the cheapest row.
    std::vector<size_t> candidates;
    for (size_t i = 0; i < entries.size(); ++i) {
        if (!candidates.empty() &&
            entries[candidates.back()].speedup == entries[i].speedup) {
            if (entries[i].power_mw < entries[candidates.back()].power_mw) {
                candidates.back() = i;
            }
            continue;
        }
        candidates.push_back(i);
    }
    // Andrew-monotone-chain lower hull in (speedup, power). The hull may
    // descend in power: a fast-and-cheap row still participates in blends
    // that meet the equality constraint (5) exactly, which is what the
    // paper's LP enforces (performance is held *at* the target, not above).
    for (const size_t idx : candidates) {
        const auto cross_ok = [&]() {
            if (hull_.size() < 2) {
                return true;
            }
            const ProfileEntry& a = entries[hull_[hull_.size() - 2]];
            const ProfileEntry& b = entries[hull_[hull_.size() - 1]];
            const ProfileEntry& c = entries[idx];
            // Keep b only if it lies strictly below segment a–c.
            const double cross =
                (b.speedup - a.speedup) * (c.power_mw.value() - a.power_mw.value()) -
                (b.power_mw.value() - a.power_mw.value()) * (c.speedup - a.speedup);
            return cross > 0.0;
        };
        while (!cross_ok()) {
            hull_.pop_back();
        }
        hull_.push_back(idx);
    }
    AEO_ASSERT(!hull_.empty(), "empty optimizer hull");
}

ConfigSchedule
EnergyOptimizer::MakePair(size_t low, size_t high, double speedup,
                          double cycle_seconds) const
{
    const auto& entries = table_->entries();
    double t_low = 0.0;
    double t_high = 0.0;
    SplitDwell(entries[low].speedup, entries[high].speedup, speedup, cycle_seconds,
               &t_low, &t_high);

    ConfigSchedule schedule;
    if (t_low > 0.0) {
        schedule.slots.push_back(ScheduleSlot{low, t_low});
    }
    if (t_high > 0.0 && high != low) {
        schedule.slots.push_back(ScheduleSlot{high, t_high});
    }
    double power_time = 0.0;
    double speedup_time = 0.0;
    for (const ScheduleSlot& slot : schedule.slots) {
        power_time += entries[slot.entry_index].power_mw.value() * slot.seconds;
        speedup_time += entries[slot.entry_index].speedup * slot.seconds;
    }
    schedule.expected_power_mw = Milliwatts(power_time / cycle_seconds);
    schedule.expected_speedup = speedup_time / cycle_seconds;
    return schedule;
}

ConfigSchedule
EnergyOptimizer::Optimize(double required_speedup, double cycle_seconds) const
{
    AEO_ASSERT(cycle_seconds > 0.0, "cycle duration must be positive");
    const double speedup =
        Clamp(required_speedup, table_->min_speedup(), table_->max_speedup());
    switch (backend_) {
      case OptimizerBackend::kConvexHull:
        return OptimizeHull(speedup, cycle_seconds);
      case OptimizerBackend::kPairSearch:
        return OptimizePairs(speedup, cycle_seconds);
      case OptimizerBackend::kSimplex:
        return OptimizeSimplex(speedup, cycle_seconds);
    }
    AEO_PANIC("unreachable optimizer backend");
}

ConfigSchedule
EnergyOptimizer::OptimizeHull(double speedup, double cycle_seconds) const
{
    const auto& entries = table_->entries();
    // Hull vertices are sorted by speedup. Find the bracketing segment.
    size_t low = hull_.front();
    size_t high = hull_.front();
    for (size_t i = 0; i < hull_.size(); ++i) {
        if (entries[hull_[i]].speedup <= speedup) {
            low = hull_[i];
            high = hull_[i];
        }
        if (entries[hull_[i]].speedup >= speedup) {
            high = hull_[i];
            break;
        }
    }
    return MakePair(low, high, speedup, cycle_seconds);
}

ConfigSchedule
EnergyOptimizer::OptimizePairs(double speedup, double cycle_seconds) const
{
    // The paper's O(N²) search: enumerate every (c_l, c_h) bracketing pair,
    // split the cycle to meet the speedup, keep the cheapest. Candidate
    // sides are filtered inline — one comparison per visited pair — so the
    // per-cycle search allocates nothing, and each surviving pair is costed
    // arithmetically with the winning schedule constructed exactly once at
    // the end. The (l, h) visit order matches the old filtered-list walk:
    // ascending l over rows with speedup <= target, ascending h over rows
    // with speedup >= target.
    const auto& entries = table_->entries();
    size_t best_l = entries.size();
    size_t best_h = entries.size();
    double best_power = std::numeric_limits<double>::infinity();
    for (size_t l = 0; l < entries.size(); ++l) {
        if (entries[l].speedup > speedup) {
            continue;
        }
        for (size_t h = 0; h < entries.size(); ++h) {
            if (entries[h].speedup < speedup) {
                continue;
            }
            // Same arithmetic (and accumulation order) as MakePair, without
            // materializing the candidate.
            double t_low = 0.0;
            double t_high = 0.0;
            SplitDwell(entries[l].speedup, entries[h].speedup, speedup,
                       cycle_seconds, &t_low, &t_high);
            double power_time = 0.0;
            if (t_low > 0.0) {
                power_time += entries[l].power_mw.value() * t_low;
            }
            if (t_high > 0.0 && h != l) {
                power_time += entries[h].power_mw.value() * t_high;
            }
            const double power = power_time / cycle_seconds;
            if (power < best_power) {
                best_power = power;
                best_l = l;
                best_h = h;
            }
        }
    }
    AEO_ASSERT(best_l < entries.size(), "pair search found no feasible schedule");
    return MakePair(best_l, best_h, speedup, cycle_seconds);
}

// aeo: hot-path-stop -- the LP backend is the reference implementation
// (DESIGN.md §7); it allocates its tableau by design. The default hull and
// pairs backends are the allocation-free per-cycle paths.
ConfigSchedule
EnergyOptimizer::OptimizeSimplex(double speedup, double cycle_seconds) const
{
    const auto& entries = table_->entries();
    std::vector<double> speedups;
    std::vector<double> powers;
    speedups.reserve(entries.size());
    powers.reserve(entries.size());
    for (const ProfileEntry& entry : entries) {
        speedups.push_back(entry.speedup);
        powers.push_back(entry.power_mw.value());
    }
    const LpSolution solution =
        SolveScheduleLp(speedups, powers, speedup, cycle_seconds);
    AEO_ASSERT(solution.feasible, "schedule LP infeasible for speedup %f", speedup);

    ConfigSchedule schedule;
    double power_time = 0.0;
    double speedup_time = 0.0;
    for (size_t i = 0; i < solution.x.size(); ++i) {
        if (solution.x[i] > 1e-9) {
            schedule.slots.push_back(ScheduleSlot{i, solution.x[i]});
            power_time += powers[i] * solution.x[i];
            speedup_time += speedups[i] * solution.x[i];
        }
    }
    // Present lower-speedup slot first, like the other backends.
    if (schedule.slots.size() == 2 &&
        speedups[schedule.slots[1].entry_index] <
            speedups[schedule.slots[0].entry_index]) {
        std::swap(schedule.slots[0], schedule.slots[1]);
    }
    schedule.expected_power_mw = Milliwatts(power_time / cycle_seconds);
    schedule.expected_speedup = speedup_time / cycle_seconds;
    return schedule;
}

}  // namespace aeo
