/**
 * @file
 * Load-adaptive profile selection — the paper's §V-C future-work proposal:
 *
 *   "A possible approach is to profile the application under a few
 *    different background loads and let the controller select the
 *    appropriate offline data by measuring the background load at runtime."
 *
 * A LoadAdaptiveProfile holds one profile table (and its default-run
 * performance target) per profiled background condition, keyed by the
 * free-memory signature the paper identifies as the dominant difference
 * between loads (§V-C: 1 GB / 500 MB / 134 MB for NL / BL / HL). At launch
 * time the runtime environment's free memory selects the nearest table.
 */
#ifndef AEO_CORE_LOAD_ADAPTIVE_H_
#define AEO_CORE_LOAD_ADAPTIVE_H_

#include <vector>

#include "core/profile_table.h"

namespace aeo {

/** One profiled operating condition. */
struct LoadConditionProfile {
    /** Free memory observed while profiling, MB (the load signature). */
    double free_memory_mb = 0.0;
    /** The profile table measured under that condition. */
    ProfileTable table;
    /** The default governors' performance under that condition (the target). */
    double default_gips = 0.0;
};

/** A family of profiles selected by the runtime load signature. */
class LoadAdaptiveProfile {
  public:
    /** @param conditions At least one profiled condition. */
    explicit LoadAdaptiveProfile(std::vector<LoadConditionProfile> conditions);

    /**
     * Selects the condition whose free-memory signature is nearest to the
     * runtime observation (log-scale distance: 134 MB vs 500 MB differ as
     * much as 500 MB vs 1.9 GB).
     */
    const LoadConditionProfile& SelectFor(double runtime_free_memory_mb) const;

    /** All conditions. */
    const std::vector<LoadConditionProfile>& conditions() const { return conditions_; }

  private:
    std::vector<LoadConditionProfile> conditions_;
};

}  // namespace aeo

#endif  // AEO_CORE_LOAD_ADAPTIVE_H_
