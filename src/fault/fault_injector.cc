#include "fault/fault_injector.h"

#include <iterator>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

const char*
FaultErrcName(FaultErrc errc)
{
    switch (errc) {
    case FaultErrc::kOk:
        return "OK";
    case FaultErrc::kNoEnt:
        return "ENOENT";
    case FaultErrc::kBusy:
        return "EBUSY";
    case FaultErrc::kInval:
        return "EINVAL";
    case FaultErrc::kPerm:
        return "EACCES";
    case FaultErrc::kIo:
        return "EIO";
    }
    return "?";
}

bool
operator==(const FaultEvent& a, const FaultEvent& b)
{
    return a.op_index == b.op_index && a.path == b.path &&
           a.is_write == b.is_write && a.errc == b.errc && a.stale == b.stale &&
           a.latency_us == b.latency_us && a.silent_clamp == b.silent_clamp;
}

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

int
FaultInjector::AddRule(FaultRule rule)
{
    AEO_ASSERT(!rule.path_prefix.empty(), "fault rule needs a path prefix");
    AEO_ASSERT(rule.fail_probability >= 0.0 && rule.fail_probability <= 1.0 &&
                   rule.stale_probability >= 0.0 && rule.stale_probability <= 1.0 &&
                   rule.latency_spike_probability >= 0.0 &&
                   rule.latency_spike_probability <= 1.0 &&
                   rule.disappear_probability >= 0.0 &&
                   rule.disappear_probability <= 1.0 &&
                   rule.silent_clamp_probability >= 0.0 &&
                   rule.silent_clamp_probability <= 1.0,
               "fault probabilities for '%s' out of [0, 1]",
               rule.path_prefix.c_str());
    AEO_ASSERT(rule.silent_clamp_factor > 0.0 && rule.silent_clamp_factor <= 1.0,
               "silent clamp factor for '%s' out of (0, 1]",
               rule.path_prefix.c_str());
    rules_.push_back(std::move(rule));
    rule_active_.push_back(1);
    BumpVersion();
    return static_cast<int>(rules_.size()) - 1;
}

void
FaultInjector::RemoveRule(int handle)
{
    if (handle >= 0 && handle < static_cast<int>(rule_active_.size())) {
        rule_active_[static_cast<size_t>(handle)] = 0;
        BumpVersion();
    }
}

void
FaultInjector::Clear()
{
    rules_.clear();
    rule_active_.clear();
    sticky_.clear();
    gone_.clear();
    BumpVersion();
}

FaultDecision
FaultInjector::OnRead(const std::string& path)
{
    return Decide(path, /*is_write=*/false);
}

FaultDecision
FaultInjector::OnWrite(const std::string& path)
{
    return Decide(path, /*is_write=*/true);
}

FaultDecision
FaultInjector::OnRead(PathQuery& query)
{
    return DecideCached(query, /*is_write=*/false);
}

FaultDecision
FaultInjector::OnWrite(PathQuery& query)
{
    return DecideCached(query, /*is_write=*/true);
}

bool
FaultInjector::IsGone(const std::string& path) const
{
    return gone_.count(path) != 0;
}

void
FaultInjector::Repair(const std::string& path)
{
    sticky_.erase(path);
    gone_.erase(path);
    BumpVersion();
}

void
FaultInjector::RepairPrefix(const std::string& prefix)
{
    for (auto it = sticky_.begin(); it != sticky_.end();) {
        it = StartsWith(it->first, prefix) ? sticky_.erase(it) : std::next(it);
    }
    for (auto it = gone_.begin(); it != gone_.end();) {
        it = StartsWith(*it, prefix) ? gone_.erase(it) : std::next(it);
    }
    BumpVersion();
}

void
FaultInjector::RepairAll()
{
    sticky_.clear();
    gone_.clear();
    BumpVersion();
}

int
FaultInjector::FindRule(const std::string& path) const
{
    // First active, unspent prefix match wins. Removed rules and rules with
    // an exhausted max_triggers budget are skipped entirely so an
    // overlapping later rule on the same node still applies.
    for (size_t i = 0; i < rules_.size(); ++i) {
        if (rule_active_[i] == 0 || rules_[i].max_triggers == 0) {
            continue;
        }
        if (StartsWith(path, rules_[i].path_prefix)) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

FaultDecision
FaultInjector::Decide(const std::string& path, bool is_write)
{
    ++op_count_;
    FaultDecision decision;

    // Latched state wins: a disappeared path stays ENOENT and a sticky
    // failure keeps returning its error until repaired.
    if (gone_.count(path) != 0) {
        decision.errc = FaultErrc::kNoEnt;
        Record(path, is_write, decision);
        return decision;
    }
    if (const auto it = sticky_.find(path); it != sticky_.end()) {
        decision.errc = it->second;
        Record(path, is_write, decision);
        return decision;
    }

    const int rule = FindRule(path);
    if (rule < 0) {
        return decision;
    }
    return Roll(rules_[static_cast<size_t>(rule)], path, is_write);
}

FaultDecision
FaultInjector::DecideCached(PathQuery& query, bool is_write)
{
    if (query.version_ != topology_version_) {
        query.version_ = topology_version_;
        query.latched_ = gone_.count(query.path_) != 0 ||
                         sticky_.count(query.path_) != 0;
        query.rule_ = FindRule(query.path_);
    }
    if (query.latched_) {
        // Every latched operation records a trace event anyway — no point
        // memoizing the map lookups.
        return Decide(query.path_, is_write);
    }
    ++op_count_;
    if (query.rule_ < 0) {
        return FaultDecision{};
    }
    return Roll(rules_[static_cast<size_t>(query.rule_)], query.path_,
                is_write);
}

// aeo: hot-path-stop -- fault-campaign slow path: allocates only when a
// fault actually fires (gone/sticky bookkeeping, trace events); the no-fault
// steady state returns a plain decision without touching the containers.
FaultDecision
FaultInjector::Roll(FaultRule& rule, const std::string& path, bool is_write)
{
    FaultDecision decision;
    const auto consume_trigger = [&] {
        if (rule.max_triggers > 0 && --rule.max_triggers == 0) {
            BumpVersion();  // the rule no longer matches anything
        }
    };

    if (rule.disappear_probability > 0.0 &&
        rng_.Bernoulli(rule.disappear_probability)) {
        consume_trigger();
        gone_.insert(path);
        BumpVersion();
        decision.errc = FaultErrc::kNoEnt;
        Record(path, is_write, decision);
        return decision;
    }
    if (rule.fail_probability > 0.0 && rng_.Bernoulli(rule.fail_probability)) {
        consume_trigger();
        decision.errc = rule.errc;
        if (rule.duration == FaultDuration::kSticky) {
            sticky_.emplace(path, rule.errc);
            BumpVersion();
        }
        Record(path, is_write, decision);
        return decision;
    }
    if (is_write && rule.silent_clamp_probability > 0.0 &&
        rng_.Bernoulli(rule.silent_clamp_probability)) {
        consume_trigger();
        decision.silent_clamp = true;
        decision.clamp_factor = rule.silent_clamp_factor;
        Record(path, is_write, decision);
        return decision;
    }
    if (!is_write && rule.stale_probability > 0.0 &&
        rng_.Bernoulli(rule.stale_probability)) {
        consume_trigger();
        decision.stale = true;
    }
    if (rule.latency_spike_probability > 0.0 &&
        rng_.Bernoulli(rule.latency_spike_probability)) {
        consume_trigger();
        decision.latency = rule.latency_spike;
    }
    if (decision.stale || decision.latency > SimTime::Zero()) {
        Record(path, is_write, decision);
    }
    return decision;
}

// aeo: hot-path-stop -- bounded fault trace: events are the campaign's
// output artifact and only accrue when a fault fires.
void
FaultInjector::Record(const std::string& path, bool is_write,
                      const FaultDecision& decision)
{
    if (trace_.size() >= trace_limit_) {
        return;
    }
    FaultEvent event;
    event.op_index = op_count_ - 1;
    event.path = path;
    event.is_write = is_write;
    event.errc = decision.errc;
    event.stale = decision.stale;
    event.latency_us = decision.latency.micros();
    event.silent_clamp = decision.silent_clamp;
    trace_.push_back(std::move(event));
}

}  // namespace aeo
