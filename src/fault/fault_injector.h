/**
 * @file
 * Deterministic fault injection for the kernel-interface and measurement
 * paths.
 *
 * On a real Nexus 6 the controller's I/O is not reliable: sysfs writes
 * return EBUSY while a governor transition is in flight, mpdecision hotplugs
 * a core and its cpufreq directory vanishes mid-run, perf drops samples
 * under load, and the power meter occasionally misses its window (Hoque et
 * al. document this class of Android measurement flakiness in detail). The
 * FaultInjector reproduces those failure modes inside the simulation:
 * guarded operations (virtual sysfs reads/writes, PMU counter reads, power
 * meter samples) consult it and receive an error code, a stale value, or an
 * added latency instead of the clean result.
 *
 * All decisions come from one explicitly seeded Rng, consumed in operation
 * order, so a given seed and operation sequence produce bit-identical fault
 * traces — experiments with faults stay as reproducible as those without.
 */
#ifndef AEO_FAULT_FAULT_INJECTOR_H_
#define AEO_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/time.h"

namespace aeo {

/** Errno-style outcome of one guarded operation. */
enum class FaultErrc {
    kOk = 0,
    kNoEnt,  ///< ENOENT — path disappeared (hotplug-style).
    kBusy,   ///< EBUSY — transient contention on the node.
    kInval,  ///< EINVAL — the value was rejected.
    kPerm,   ///< EACCES — write to a read-only node.
    kIo,     ///< EIO — the operation failed outright.
};

/** Human-readable errno-style name ("EBUSY", ...). */
const char* FaultErrcName(FaultErrc errc);

/** Whether a triggered fault clears itself or latches. */
enum class FaultDuration {
    kTransient,  ///< Each operation rolls independently.
    kSticky,     ///< Once triggered, the path keeps failing until Repair().
};

/** One failure mode covering all paths with a common prefix. */
struct FaultRule {
    /** Operations on paths starting with this prefix are covered. */
    std::string path_prefix;
    /** Per-operation probability of returning @ref errc. */
    double fail_probability = 0.0;
    /** Error injected when the failure fires. */
    FaultErrc errc = FaultErrc::kBusy;
    /** Transient (default) or sticky failure. */
    FaultDuration duration = FaultDuration::kTransient;
    /** Reads only: probability of serving the previous value unchanged. */
    double stale_probability = 0.0;
    /** Probability of the operation completing late. */
    double latency_spike_probability = 0.0;
    /** Added latency when a spike fires. */
    SimTime latency_spike = SimTime::Millis(50);
    /**
     * Per-operation probability that the path disappears entirely (sticky
     * ENOENT + Exists() false), as when mpdecision offlines a core.
     */
    double disappear_probability = 0.0;
    /**
     * Writes only: probability of a *silent clamp* — the write reports
     * success but a lower value is applied, as when msm_thermal caps
     * scaling_max_freq underneath a userspace-governor write. Numeric
     * payloads are scaled by @ref silent_clamp_factor before reaching the
     * file; only read-back can expose the substitution.
     */
    double silent_clamp_probability = 0.0;
    /** Multiplier applied to the written value when a silent clamp fires. */
    double silent_clamp_factor = 0.5;
    /** Stop firing after this many triggers; negative = unlimited. Lets
     * tests stage exact failure counts deterministically. */
    int max_triggers = -1;
};

/** What the injector decided for one operation. */
struct FaultDecision {
    FaultErrc errc = FaultErrc::kOk;
    /** Reads only: serve the last successfully read value. */
    bool stale = false;
    /** Added completion latency (zero when no spike fired). */
    SimTime latency = SimTime::Zero();
    /** Writes only: report success but apply a clamped-down value. */
    bool silent_clamp = false;
    /** Multiplier for the applied value when silently clamped. */
    double clamp_factor = 1.0;

    bool ok() const { return errc == FaultErrc::kOk; }
};

/** One non-clean decision, recorded for determinism checks and reports. */
struct FaultEvent {
    uint64_t op_index = 0;
    std::string path;
    bool is_write = false;
    FaultErrc errc = FaultErrc::kOk;
    bool stale = false;
    int64_t latency_us = 0;
    bool silent_clamp = false;
};

bool operator==(const FaultEvent& a, const FaultEvent& b);

/** Seeded source of injected failures for guarded I/O paths. */
class FaultInjector {
  public:
    /**
     * Reusable, memoized lookup for one hot guarded path.
     *
     * Resolving a decision normally costs two latched-state map lookups
     * plus a prefix scan over every rule — per operation. A PathQuery
     * caches that resolution (latched? which rule?) against a topology
     * version the injector bumps whenever anything that could change the
     * answer changes (rules added/removed/spent, sticky/gone state latched
     * or repaired). The 5 kHz power monitor consults the injector through
     * one of these; the decision stream — RNG draws, op indices, trace —
     * is bit-identical to the uncached path.
     */
    class PathQuery {
      public:
        explicit PathQuery(std::string path) : path_(std::move(path)) {}

        const std::string& path() const { return path_; }

      private:
        friend class FaultInjector;
        std::string path_;
        /** Injector topology the cached fields were resolved against;
         * 0 never matches (versions start at 1). */
        uint64_t version_ = 0;
        /** Index of the first active matching rule, -1 for none. */
        int rule_ = -1;
        /** Path has latched sticky/gone state: take the full slow path. */
        bool latched_ = false;
    };

    /** @param seed Seed for the decision stream. */
    explicit FaultInjector(uint64_t seed);

    /**
     * Adds a failure mode; rules are consulted in insertion order and the
     * first *active* prefix match wins — a removed rule or one whose
     * max_triggers budget is spent no longer shadows later rules on the
     * same node. Returns a handle for RemoveRule(); handles stay valid
     * until Clear().
     */
    int AddRule(FaultRule rule);

    /** Deactivates the rule behind @p handle (latched state is kept; use
     * Repair()/RepairPrefix() to clear it). No-op on a stale handle. */
    void RemoveRule(int handle);

    /** Drops all rules and latched state (the trace is kept). */
    void Clear();

    /** Consults the rules for a read of @p path. */
    FaultDecision OnRead(const std::string& path);

    /** Consults the rules for a write to @p path. */
    FaultDecision OnWrite(const std::string& path);

    /** Like OnRead(path), resolved through the query's memo. */
    FaultDecision OnRead(PathQuery& query);

    /** Like OnWrite(path), resolved through the query's memo. */
    FaultDecision OnWrite(PathQuery& query);

    /** True if @p path has disappeared (hotplug-style). */
    bool IsGone(const std::string& path) const;

    /** Clears sticky/disappeared state latched for @p path. */
    void Repair(const std::string& path);

    /** Clears sticky/disappeared state for every path under @p prefix. */
    void RepairPrefix(const std::string& prefix);

    /** Clears all sticky/disappeared state. Spent max_triggers budgets are
     * NOT restored: repair heals the node, not the rule. */
    void RepairAll();

    /** Operations consulted so far (clean ones included). */
    uint64_t op_count() const { return op_count_; }

    /** Non-clean decisions, in operation order (capped; see below). */
    const std::vector<FaultEvent>& trace() const { return trace_; }

    /** Caps the retained trace; older entries are kept, new ones dropped. */
    void set_trace_limit(size_t limit) { trace_limit_ = limit; }

  private:
    FaultDecision Decide(const std::string& path, bool is_write);
    FaultDecision DecideCached(PathQuery& query, bool is_write);
    /** First active, unspent rule whose prefix covers @p path; -1 none. */
    int FindRule(const std::string& path) const;
    /** Rolls the probability cascade for a matched rule. */
    FaultDecision Roll(FaultRule& rule, const std::string& path,
                       bool is_write);
    void Record(const std::string& path, bool is_write,
                const FaultDecision& decision);
    /** Invalidates outstanding PathQuery memos. */
    void BumpVersion() { ++topology_version_; }

    Rng rng_;
    std::vector<FaultRule> rules_;
    /** Parallel to rules_: false once RemoveRule() retired the rule. */
    std::vector<char> rule_active_;
    /** Paths whose sticky failure has latched, with the latched error. */
    std::map<std::string, FaultErrc> sticky_;
    /** Paths that have disappeared. */
    std::set<std::string> gone_;
    /** Bumped on any rule or latched-state change; see PathQuery. */
    uint64_t topology_version_ = 1;
    uint64_t op_count_ = 0;
    std::vector<FaultEvent> trace_;
    size_t trace_limit_ = 100000;
};

}  // namespace aeo

#endif  // AEO_FAULT_FAULT_INJECTOR_H_
