/**
 * @file
 * The CPU operating-performance-point (OPP) table: the discrete set of
 * frequency/voltage pairs the cluster supports (Table II of the paper lists
 * the 18 Nexus 6 frequencies).
 *
 * Levels are 0-based in code; the paper numbers them 1-based. Helpers that
 * format for display use the paper's numbering.
 */
#ifndef AEO_SOC_FREQUENCY_TABLE_H_
#define AEO_SOC_FREQUENCY_TABLE_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace aeo {

/** One operating point: clock frequency and the rail voltage it requires. */
struct OppEntry {
    Gigahertz frequency;
    Volts voltage;
};

/** Immutable, ascending table of CPU operating points. */
class FrequencyTable {
  public:
    /** @param entries Operating points in strictly increasing frequency. */
    explicit FrequencyTable(std::vector<OppEntry> entries);

    /** Number of levels. */
    int size() const { return static_cast<int>(entries_.size()); }

    /** Frequency at 0-based @p level. */
    Gigahertz FrequencyAt(int level) const;

    /** Voltage at 0-based @p level. */
    Volts VoltageAt(int level) const;

    /** Lowest level (always 0). */
    int min_level() const { return 0; }

    /** Highest level. */
    int max_level() const { return size() - 1; }

    /**
     * The level whose frequency is closest to @p freq (exact matches
     * preferred; ties resolve to the lower level).
     */
    int ClosestLevel(Gigahertz freq) const;

    /** Lowest level with frequency ≥ @p freq; max_level() if none. */
    int LevelAtOrAbove(Gigahertz freq) const;

    /** Paper-style 1-based label for a 0-based level (e.g. "10"). */
    std::string PaperLabel(int level) const;

  private:
    std::vector<OppEntry> entries_;
};

}  // namespace aeo

#endif  // AEO_SOC_FREQUENCY_TABLE_H_
