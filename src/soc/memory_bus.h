/**
 * @file
 * The memory-bus model: a DVFS-capable interconnect with discrete bandwidth
 * levels (the devfreq device the paper's cpubw_hwmon governor manages).
 */
#ifndef AEO_SOC_MEMORY_BUS_H_
#define AEO_SOC_MEMORY_BUS_H_

#include <cstdint>
#include <functional>

#include "soc/bandwidth_table.h"

namespace aeo {

/** A memory bus whose provisioned bandwidth is selected from a table. */
class MemoryBus {
  public:
    /** @param table The bandwidth table; copied in. */
    explicit MemoryBus(BandwidthTable table);

    /** The bandwidth table. */
    const BandwidthTable& table() const { return table_; }

    /** Current 0-based bandwidth level. */
    int level() const { return level_; }

    /** Currently provisioned bandwidth. */
    MegabytesPerSecond bandwidth() const { return table_.BandwidthAt(level_); }

    /** Switches to @p level; counts a transition when it changes. */
    void SetLevel(int level);

    /** Registers a callback invoked *before* any state change is applied. */
    void SetPreChangeListener(std::function<void()> listener);

    /** Registers a callback invoked *after* any state change is applied. */
    void SetPostChangeListener(std::function<void()> listener);

    /** Number of bandwidth transitions performed. */
    uint64_t transition_count() const { return transition_count_; }

  private:
    BandwidthTable table_;
    int level_ = 0;
    uint64_t transition_count_ = 0;
    std::function<void()> pre_change_;
    std::function<void()> post_change_;
};

}  // namespace aeo

#endif  // AEO_SOC_MEMORY_BUS_H_
