#include "soc/frequency_table.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

FrequencyTable::FrequencyTable(std::vector<OppEntry> entries)
    : entries_(std::move(entries))
{
    AEO_ASSERT(!entries_.empty(), "frequency table must not be empty");
    for (size_t i = 1; i < entries_.size(); ++i) {
        AEO_ASSERT(entries_[i].frequency > entries_[i - 1].frequency,
                   "frequencies not strictly increasing at level %zu", i);
        AEO_ASSERT(entries_[i].voltage >= entries_[i - 1].voltage,
                   "voltage must be non-decreasing with frequency at level %zu", i);
    }
}

Gigahertz
FrequencyTable::FrequencyAt(int level) const
{
    AEO_ASSERT(level >= 0 && level < size(), "frequency level %d out of [0, %d)",
               level, size());
    return entries_[static_cast<size_t>(level)].frequency;
}

Volts
FrequencyTable::VoltageAt(int level) const
{
    AEO_ASSERT(level >= 0 && level < size(), "frequency level %d out of [0, %d)",
               level, size());
    return entries_[static_cast<size_t>(level)].voltage;
}

int
FrequencyTable::ClosestLevel(Gigahertz freq) const
{
    int best = 0;
    double best_dist = std::fabs(entries_[0].frequency.value() - freq.value());
    for (int level = 1; level < size(); ++level) {
        const double dist =
            std::fabs(entries_[static_cast<size_t>(level)].frequency.value() -
                      freq.value());
        if (dist < best_dist) {
            best = level;
            best_dist = dist;
        }
    }
    return best;
}

int
FrequencyTable::LevelAtOrAbove(Gigahertz freq) const
{
    for (int level = 0; level < size(); ++level) {
        if (entries_[static_cast<size_t>(level)].frequency >= freq) {
            return level;
        }
    }
    return max_level();
}

std::string
FrequencyTable::PaperLabel(int level) const
{
    AEO_ASSERT(level >= 0 && level < size(), "frequency level %d out of [0, %d)",
               level, size());
    return StrFormat("%d", level + 1);
}

}  // namespace aeo
