/**
 * @file
 * The heterogeneous (big.LITTLE) SoC cluster topology.
 *
 * The paper targets a single synchronous Krait cluster, but modern
 * heterogeneous multi-processing SoCs pair a fast out-of-order "big"
 * cluster with an efficient in-order "LITTLE" one, each with its own
 * frequency domain, silicon speed and leakage characteristics (Coutinho et
 * al., PAPERS.md). This header generalizes the one-cluster assumption into
 * an explicit topology:
 *
 *  - ClusterSpec       — one frequency domain: OPP table, core count, the
 *                        per-core throughput multiplier relative to the
 *                        reference core, and dynamic/leakage power scales;
 *  - ThreadPlacement   — where the foreground's threads may run (LITTLE
 *                        only, big only, or spanning both with a migration
 *                        cost), the third scheduling axis next to the two
 *                        DVFS domains;
 *  - ClusterTopology   — the validated list of clusters plus the placement
 *                        model; a single-entry topology reproduces the
 *                        paper's homogeneous device exactly;
 *  - HetConfig         — one point of the cross-product configuration space
 *                        (big level × LITTLE level × bandwidth level ×
 *                        placement) with a canonical packed 64-bit config id
 *                        keyed on (big_khz, little_khz, bw_mbps, placement).
 */
#ifndef AEO_SOC_CLUSTER_TOPOLOGY_H_
#define AEO_SOC_CLUSTER_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "soc/bandwidth_table.h"
#include "soc/frequency_table.h"

namespace aeo {

/** Microarchitectural role of a cluster. */
enum class ClusterRole {
    /** The only cluster of a homogeneous SoC (the paper's Krait 450). */
    kUnified,
    /** The efficient in-order cluster (e.g. Cortex-A53). */
    kLittle,
    /** The performance out-of-order cluster (e.g. Cortex-A57). */
    kBig,
};

/** Printable role name ("unified", "little", "big"). */
std::string ClusterRoleName(ClusterRole role);

/** Placeholder single-OPP table for default-constructed ClusterSpecs
 * (FrequencyTable has no empty state); presets always replace it. */
FrequencyTable MakePlaceholderFrequencyTable();

/** One CPU frequency domain of the SoC. */
struct ClusterSpec {
    /** Human-readable name, e.g. "krait450" or "a57". */
    std::string name;
    ClusterRole role = ClusterRole::kUnified;
    /** Cores sharing this clock. */
    int num_cores = 4;
    /** First logical CPU of the domain (names the cpufreq policy dir, e.g.
     * first_cpu 4 → .../cpufreq/policy4, as on Linux big.LITTLE). */
    int first_cpu = 0;
    /** The OPP table of this domain (placeholder 1 GHz OPP until a preset
     * fills it in; FrequencyTable has no empty state). */
    FrequencyTable table = MakePlaceholderFrequencyTable();
    /**
     * Per-core throughput multiplier relative to the reference core at equal
     * clock (silicon speed: issue width, OoO window, cache). 1.0 for the
     * reference; ~0.6 for an in-order LITTLE core.
     */
    double perf_scale = 1.0;
    /** Dynamic-power coefficient multiplier vs the reference cluster. */
    double dyn_power_scale = 1.0;
    /** Leakage coefficient multiplier vs the reference cluster. */
    double leak_power_scale = 1.0;
};

/**
 * Where the foreground application's threads are allowed to run. The
 * placement is the third axis of the heterogeneous configuration space:
 * at a fixed frequency pair, confining a lightly-threaded app to the
 * LITTLE cluster saves the big cluster's leakage, while spanning both
 * buys throughput at a migration cost.
 */
enum class ThreadPlacement {
    kLittleOnly = 0,
    kBigOnly = 1,
    /** Threads spill big-first onto both clusters (HMP global scheduling). */
    kBoth = 2,
};

/** Number of ThreadPlacement values (grid enumeration bound). */
inline constexpr int kNumThreadPlacements = 3;

/** Printable placement name ("little", "big", "both"). */
std::string ThreadPlacementName(ThreadPlacement placement);

/** Cross-cluster thread migration/coherence model. */
struct PlacementModel {
    /**
     * Fractional throughput lost when a workload spans both clusters
     * (cache-line bouncing, cross-cluster migrations, asymmetric stragglers).
     * Applied multiplicatively to the spanned pool's capacity.
     */
    double span_penalty = 0.08;
};

/**
 * The validated cluster list plus the placement model. Index 0 is the
 * *primary* cluster: the only one on a homogeneous SoC, the big one on a
 * heterogeneous SoC (the controller's legacy single-cluster seam always
 * addresses the primary).
 */
class ClusterTopology {
  public:
    /** Single-cluster (homogeneous) topology. */
    explicit ClusterTopology(ClusterSpec unified, BandwidthTable bw_table);

    /** big.LITTLE topology; @p big must out-perform @p little per core. */
    ClusterTopology(ClusterSpec big, ClusterSpec little, BandwidthTable bw_table,
                    PlacementModel placement = {});

    int num_clusters() const { return static_cast<int>(clusters_.size()); }
    bool is_heterogeneous() const { return clusters_.size() > 1; }

    /** Cluster by index; 0 = primary (big on a heterogeneous SoC). */
    const ClusterSpec& cluster(int index) const;

    /** The primary cluster (index 0). */
    const ClusterSpec& primary() const { return clusters_.front(); }

    /** The LITTLE cluster; Fatal() on a homogeneous topology. */
    const ClusterSpec& little() const;

    /** The shared memory-bus table. */
    const BandwidthTable& bandwidth_table() const { return bw_table_; }

    const PlacementModel& placement_model() const { return placement_; }

    /**
     * Placements admissible on this topology: {kBigOnly} for a homogeneous
     * SoC (the legacy semantics), all three for big.LITTLE.
     */
    std::vector<ThreadPlacement> AdmissiblePlacements() const;

  private:
    void Validate() const;

    std::vector<ClusterSpec> clusters_;
    BandwidthTable bw_table_;
    PlacementModel placement_;
};

/**
 * One point of the heterogeneous configuration space. Levels are 0-based
 * indices into the respective tables; little_level is ignored for
 * placements that keep the LITTLE cluster idle only in the sense that the
 * foreground does not run there — the domain still clocks (and leaks) at
 * the level, which is exactly the trade the optimizer prices.
 */
struct HetConfig {
    int big_level = 0;
    int little_level = 0;
    int bw_level = 0;
    ThreadPlacement placement = ThreadPlacement::kBigOnly;

    constexpr auto operator<=>(const HetConfig&) const = default;

    /** "(b3, l1, w2, both)"-style label with 1-based level numbers. */
    std::string ToString() const;
};

/**
 * Canonical packed config id keyed on the *physical* operating point
 * (big_khz, little_khz, bw_mbps, placement) rather than table indices, so
 * ids survive table pruning and compare across presets:
 *
 *   bits 63..42  big cluster kHz   (22 bits, up to ~4.19 GHz)
 *   bits 41..20  LITTLE cluster kHz (22 bits)
 *   bits 19..2   bandwidth MBps    (18 bits, up to ~262 GBps)
 *   bits  1..0   placement
 */
uint64_t EncodeHetConfigId(long long big_khz, long long little_khz,
                           long long bw_mbps, ThreadPlacement placement);

/** The config id of @p config on @p topology (homogeneous: little_khz 0). */
uint64_t HetConfigId(const ClusterTopology& topology, const HetConfig& config);

}  // namespace aeo

#endif  // AEO_SOC_CLUSTER_TOPOLOGY_H_
