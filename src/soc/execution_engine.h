/**
 * @file
 * The analytic execution (performance) model.
 *
 * The controller in the paper only ever observes application performance in
 * GIPS as a function of the system configuration (CPU frequency × memory
 * bandwidth). This model produces that observable surface with the
 * qualitative properties the paper reports:
 *
 *  - compute-bound work scales ~linearly with CPU frequency,
 *  - memory-intensive work saturates as bandwidth becomes the bottleneck,
 *  - rate-paced applications (games, video/audio players, video calls) cap
 *    at their demand and leave the CPU partially idle,
 *  - a background load steals bandwidth and core time.
 *
 * Per-instruction latency is modelled as serial compute + memory time
 * (no overlap):
 *
 *     t_instr = 1 / (f · ipc · parallelism) + bytes_per_instr / bw_effective
 *     rate    = min(demand, 1 / t_instr)
 */
#ifndef AEO_SOC_EXECUTION_ENGINE_H_
#define AEO_SOC_EXECUTION_ENGINE_H_

#include <limits>

#include "common/units.h"
#include "soc/cluster_topology.h"

namespace aeo {

/** Demand a workload places on the SoC while in its current phase. */
struct WorkloadDemand {
    /** Per-core instructions per cycle achieved by this code. */
    double ipc = 1.0;
    /** Effective number of concurrently busy cores (1 .. num_cores). */
    double parallelism = 1.0;
    /** Average bytes of bus traffic per instruction. */
    double mem_bytes_per_instr = 0.0;
    /** Rate cap in GIPS; infinity for self-paced (batch) work. */
    double demand_gips = std::numeric_limits<double>::infinity();

    /** True when the workload runs as fast as the hardware allows. */
    bool self_paced() const { return !(demand_gips < std::numeric_limits<double>::infinity()); }
};

/** What a workload achieves at a given configuration. */
struct ExecutionRates {
    /** Achieved instruction rate. */
    double gips = 0.0;
    /** Core-seconds consumed per second of wall time (0 .. num_cores). */
    double busy_cores = 0.0;
    /** Bus traffic generated, GB/s. */
    double mem_gbps = 0.0;
    /** Hardware-limited rate at this configuration (ignoring demand cap). */
    double capacity_gips = 0.0;

    /** CPU load as a governor sees it: busy fraction of allotted cores. */
    double
    LoadFraction(double allotted_cores) const
    {
        if (allotted_cores <= 0.0) {
            return 0.0;
        }
        const double load = busy_cores / allotted_cores;
        return load > 1.0 ? 1.0 : load;
    }
};

/** Tunable constants of the execution model. */
struct ExecutionModelParams {
    /** Fraction of nominal bus bandwidth usable by instruction streams. */
    double bandwidth_efficiency = 0.85;
    /** Fraction of capacity a background load may claim before yielding. */
    double background_share = 0.35;
    /**
     * Prefetcher/writeback bus traffic per busy core, GB/s. This traffic is
     * latency-tolerant (it does not gate instruction throughput) but the
     * cpubw_hwmon governor cannot tell it apart from demand traffic — the
     * reason the default bandwidth governor over-provisions the bus for
     * busy workloads (§V-D, Fig. 5).
     */
    double prefetch_gbps_per_busy_core = 0.15;
};

/** Combined foreground + background rates at one configuration. */
struct SharedExecutionRates {
    ExecutionRates foreground;
    ExecutionRates background;
};

/** One cluster's operating point as the execution model sees it. */
struct ClusterOperatingPoint {
    Gigahertz frequency{1.0};
    /** Per-core throughput multiplier (ClusterSpec::perf_scale). */
    double perf_scale = 1.0;
    int online_cores = 0;
};

/**
 * Shared rates on a heterogeneous SoC, with the per-cluster split the
 * device needs to drive per-cluster load meters and the power model. The
 * analytic model runs a workload's assigned cores in lockstep, so one
 * utilization per (workload, cluster) pair captures the busiest core.
 */
struct HetExecutionRates {
    ExecutionRates foreground;
    ExecutionRates background;
    /** Busy core-seconds per second on the big cluster (fg + bg). */
    double big_busy_cores = 0.0;
    /** Busy core-seconds per second on the LITTLE cluster (fg + bg). */
    double little_busy_cores = 0.0;
    /** Busiest-core load per cluster (what each policy's governor sees). */
    double big_max_core_load = 0.0;
    double little_max_core_load = 0.0;
};

/** Evaluates the analytic performance model. Stateless and copyable. */
class ExecutionEngine {
  public:
    explicit ExecutionEngine(ExecutionModelParams params = {});

    /** Rates for a single workload running alone. */
    ExecutionRates Compute(const WorkloadDemand& demand, Gigahertz freq,
                           MegabytesPerSecond bandwidth, int online_cores) const;

    /**
     * Rates when a foreground workload shares the SoC with a background
     * load. The background is serviced first up to @c background_share of
     * capacity (kernel timeslicing keeps background tasks alive); the
     * foreground then sees the remaining bandwidth and cores.
     */
    SharedExecutionRates ComputeShared(const WorkloadDemand& foreground,
                                       const WorkloadDemand& background,
                                       Gigahertz freq,
                                       MegabytesPerSecond bandwidth,
                                       int online_cores) const;

    /**
     * Shared rates on a big.LITTLE SoC. The foreground's threads fill the
     * placement's admissible clusters fastest-core-first; the background
     * models Android's HMP bias and fills LITTLE-first regardless of the
     * foreground's confinement. Spanning both clusters costs
     * @p span_penalty of pool throughput (migrations, coherence).
     */
    HetExecutionRates ComputeSharedHet(const WorkloadDemand& foreground,
                                       const WorkloadDemand& background,
                                       const ClusterOperatingPoint& big,
                                       const ClusterOperatingPoint& little,
                                       ThreadPlacement placement,
                                       double span_penalty,
                                       MegabytesPerSecond bandwidth) const;

    const ExecutionModelParams& params() const { return params_; }

  private:
    /** A core pool assembled from one or two clusters. */
    struct PoolAssignment {
        double throughput_ghz = 0.0;
        double cores = 0.0;
        double big_cores = 0.0;
        double little_cores = 0.0;
    };

    static PoolAssignment AssignPool(double parallelism, double big_eq_ghz,
                                     double big_cores, double little_eq_ghz,
                                     double little_cores, bool big_first,
                                     double span_penalty);

    ExecutionRates ComputeWith(const WorkloadDemand& demand, Gigahertz freq,
                               double effective_gbps, double max_cores) const;

    ExecutionRates ComputeWithPool(const WorkloadDemand& demand,
                                   const PoolAssignment& pool,
                                   double effective_gbps) const;

    ExecutionModelParams params_;
};

}  // namespace aeo

#endif  // AEO_SOC_EXECUTION_ENGINE_H_
