/**
 * @file
 * The memory-bus bandwidth table: the discrete set of bandwidths devfreq can
 * select (Table II lists the 13 Nexus 6 bandwidths).
 */
#ifndef AEO_SOC_BANDWIDTH_TABLE_H_
#define AEO_SOC_BANDWIDTH_TABLE_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace aeo {

/** Immutable, ascending table of memory-bus bandwidth levels. */
class BandwidthTable {
  public:
    /** @param levels Bandwidths in strictly increasing order. */
    explicit BandwidthTable(std::vector<MegabytesPerSecond> levels);

    /** Number of levels. */
    int size() const { return static_cast<int>(levels_.size()); }

    /** Bandwidth at 0-based @p level. */
    MegabytesPerSecond BandwidthAt(int level) const;

    /** Lowest level (always 0). */
    int min_level() const { return 0; }

    /** Highest level. */
    int max_level() const { return size() - 1; }

    /** Smallest level whose bandwidth is ≥ @p need; max_level() if none. */
    int LevelAtOrAbove(MegabytesPerSecond need) const;

    /** The level whose bandwidth is closest to @p bw. */
    int ClosestLevel(MegabytesPerSecond bw) const;

    /** Paper-style 1-based label for a 0-based level. */
    std::string PaperLabel(int level) const;

  private:
    std::vector<MegabytesPerSecond> levels_;
};

}  // namespace aeo

#endif  // AEO_SOC_BANDWIDTH_TABLE_H_
