#include "soc/gpu_domain.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace aeo {

GpuDomain::GpuDomain(std::vector<GpuOpp> opps) : opps_(std::move(opps))
{
    AEO_ASSERT(!opps_.empty(), "GPU needs at least one operating point");
    for (size_t i = 1; i < opps_.size(); ++i) {
        AEO_ASSERT(opps_[i].mhz > opps_[i - 1].mhz,
                   "GPU clocks not strictly increasing at level %zu", i);
        AEO_ASSERT(opps_[i].voltage >= opps_[i - 1].voltage,
                   "GPU voltage must be non-decreasing at level %zu", i);
    }
}

double
GpuDomain::MhzAt(int level) const
{
    AEO_ASSERT(level >= 0 && level < size(), "GPU level %d out of [0, %d)", level,
               size());
    return opps_[static_cast<size_t>(level)].mhz;
}

Volts
GpuDomain::VoltageAt(int level) const
{
    AEO_ASSERT(level >= 0 && level < size(), "GPU level %d out of [0, %d)", level,
               size());
    return opps_[static_cast<size_t>(level)].voltage;
}

int
GpuDomain::ClosestLevel(double mhz) const
{
    int best = 0;
    double best_dist = std::fabs(opps_[0].mhz - mhz);
    for (int level = 1; level < size(); ++level) {
        const double dist = std::fabs(opps_[static_cast<size_t>(level)].mhz - mhz);
        if (dist < best_dist) {
            best = level;
            best_dist = dist;
        }
    }
    return best;
}

int
GpuDomain::LevelAtOrAbove(double mhz) const
{
    for (int level = 0; level < size(); ++level) {
        if (opps_[static_cast<size_t>(level)].mhz >= mhz) {
            return level;
        }
    }
    return max_level();
}

void
GpuDomain::SetLevel(int level)
{
    AEO_ASSERT(level >= 0 && level < size(), "GPU level %d out of [0, %d)", level,
               size());
    if (level == level_) {
        return;
    }
    if (pre_change_) {
        pre_change_();
    }
    level_ = level;
    ++transition_count_;
    if (post_change_) {
        post_change_();
    }
}

void
GpuDomain::SetPreChangeListener(std::function<void()> listener)
{
    pre_change_ = std::move(listener);
}

void
GpuDomain::SetPostChangeListener(std::function<void()> listener)
{
    post_change_ = std::move(listener);
}

GpuDomain
MakeAdreno420()
{
    // Adreno 420 operating points (kgsl pwrlevels on apq8084), with a
    // voltage curve analogous to the CPU rail's.
    return GpuDomain({
        {200.0, Volts(0.80)},
        {300.0, Volts(0.85)},
        {389.0, Volts(0.90)},
        {500.0, Volts(0.98)},
        {600.0, Volts(1.07)},
    });
}

}  // namespace aeo
