#include "soc/exynos5433.h"

#include <array>
#include <cmath>

namespace aeo {

namespace {

// A57 DVFS ladder (GHz), the production 5433 big-cluster operating points
// thinned to the 7 the stock HMP governor actually dwells on.
constexpr std::array<double, kExynos5433BigLevels> kBigGhz = {
    0.700, 0.900, 1.100, 1.300, 1.500, 1.700, 1.900,
};

// A53 DVFS ladder (GHz).
constexpr std::array<double, kExynos5433LittleLevels> kLittleGhz = {
    0.400, 0.600, 0.800, 1.000, 1.200, 1.300,
};

// Shared LPDDR3-1650 bus bandwidth levels (MBps).
constexpr std::array<double, kExynos5433BwLevels> kBwMbps = {
    1017, 1355, 2033, 2710, 4066, 5421, 8132, 13200,
};

/** A57 rail voltage: affine with a super-linear tail, like the Krait curve
 * but anchored to the 5433's 0.90–1.225 V big-cluster rail. */
double
BigVoltageForGhz(double ghz)
{
    constexpr double kVmin = 0.90;
    constexpr double kVmax = 1.225;
    constexpr double kFmin = 0.700;
    constexpr double kFmax = 1.900;
    const double t = (ghz - kFmin) / (kFmax - kFmin);
    return kVmin + (kVmax - kVmin) * std::pow(t, 1.20);
}

/** A53 rail voltage (0.85–1.15 V). */
double
LittleVoltageForGhz(double ghz)
{
    constexpr double kVmin = 0.85;
    constexpr double kVmax = 1.15;
    constexpr double kFmin = 0.400;
    constexpr double kFmax = 1.300;
    const double t = (ghz - kFmin) / (kFmax - kFmin);
    return kVmin + (kVmax - kVmin) * std::pow(t, 1.10);
}

template <size_t N>
FrequencyTable
MakeTable(const std::array<double, N>& ghz, double (*voltage)(double))
{
    std::vector<OppEntry> entries;
    entries.reserve(N);
    for (const double f : ghz) {
        entries.push_back(OppEntry{Gigahertz(f), Volts(voltage(f))});
    }
    return FrequencyTable(std::move(entries));
}

}  // namespace

FrequencyTable
MakeExynos5433BigTable()
{
    return MakeTable(kBigGhz, BigVoltageForGhz);
}

FrequencyTable
MakeExynos5433LittleTable()
{
    return MakeTable(kLittleGhz, LittleVoltageForGhz);
}

BandwidthTable
MakeExynos5433BandwidthTable()
{
    std::vector<MegabytesPerSecond> levels;
    levels.reserve(kBwMbps.size());
    for (const double mbps : kBwMbps) {
        levels.push_back(MegabytesPerSecond(mbps));
    }
    return BandwidthTable(std::move(levels));
}

ClusterTopology
MakeExynos5433Topology()
{
    ClusterSpec big;
    big.name = "a57";
    big.role = ClusterRole::kBig;
    big.num_cores = kExynos5433CoresPerCluster;
    big.first_cpu = 4;  // .../cpufreq/policy4, the Linux big.LITTLE layout.
    big.table = MakeExynos5433BigTable();
    big.perf_scale = 1.0;
    big.dyn_power_scale = 1.0;
    big.leak_power_scale = 1.0;

    ClusterSpec little;
    little.name = "a53";
    little.role = ClusterRole::kLittle;
    little.num_cores = kExynos5433CoresPerCluster;
    little.first_cpu = 0;  // .../cpufreq/policy0.
    little.table = MakeExynos5433LittleTable();
    // In-order A53: roughly 60 % of A57 per-core IPC at equal clock, at a
    // fraction of the power — the published per-core energy ratio is ~3-4×
    // in the big cluster's favor at its high end.
    little.perf_scale = 0.58;
    little.dyn_power_scale = 0.32;
    little.leak_power_scale = 0.38;

    PlacementModel placement;
    placement.span_penalty = 0.08;
    return ClusterTopology(std::move(big), std::move(little),
                           MakeExynos5433BandwidthTable(), placement);
}

}  // namespace aeo
