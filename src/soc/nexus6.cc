#include "soc/nexus6.h"

#include <array>
#include <cmath>

namespace aeo {

namespace {

// Table II, CPU frequencies (GHz), levels 1..18 in the paper's numbering.
constexpr std::array<double, kNexus6CpuLevels> kCpuGhz = {
    0.3000, 0.4224, 0.6528, 0.7296, 0.8832, 0.9600, 1.0368, 1.1904, 1.2672,
    1.4976, 1.5744, 1.7280, 1.9584, 2.2656, 2.4576, 2.4960, 2.5728, 2.6496,
};

// Table II, memory bandwidths (MBps), levels 1..13.
constexpr std::array<double, kNexus6BwLevels> kBwMbps = {
    762, 1144, 1525, 2288, 3051, 3952, 4684, 5996, 7019, 8056, 10101, 12145,
    16250,
};

// Krait 450 rail voltage as a function of frequency. The shape (affine with
// a mild super-linear tail) follows published msm8974/apq8084 regulator
// tables; absolute values are calibrated so the power model reproduces the
// paper's Table I anchor points (see tests/soc/nexus6_calibration_test.cc).
double
VoltageForGhz(double ghz)
{
    constexpr double kVmin = 0.80;
    constexpr double kVmax = 1.15;
    constexpr double kFmin = 0.3000;
    constexpr double kFmax = 2.6496;
    const double t = (ghz - kFmin) / (kFmax - kFmin);
    return kVmin + (kVmax - kVmin) * std::pow(t, 1.15);
}

}  // namespace

FrequencyTable
MakeNexus6FrequencyTable()
{
    std::vector<OppEntry> entries;
    entries.reserve(kCpuGhz.size());
    for (const double ghz : kCpuGhz) {
        entries.push_back(OppEntry{Gigahertz(ghz), Volts(VoltageForGhz(ghz))});
    }
    return FrequencyTable(std::move(entries));
}

BandwidthTable
MakeNexus6BandwidthTable()
{
    std::vector<MegabytesPerSecond> levels;
    levels.reserve(kBwMbps.size());
    for (const double mbps : kBwMbps) {
        levels.push_back(MegabytesPerSecond(mbps));
    }
    return BandwidthTable(std::move(levels));
}

ClusterTopology
MakeNexus6Topology()
{
    ClusterSpec krait;
    krait.name = "krait450";
    krait.role = ClusterRole::kUnified;
    krait.num_cores = kNexus6Cores;
    krait.first_cpu = 0;
    krait.table = MakeNexus6FrequencyTable();
    krait.perf_scale = 1.0;
    krait.dyn_power_scale = 1.0;
    krait.leak_power_scale = 1.0;
    return ClusterTopology(std::move(krait), MakeNexus6BandwidthTable());
}

}  // namespace aeo
