#include "soc/cpu_cluster.h"

#include <utility>

#include "common/logging.h"

namespace aeo {

CpuCluster::CpuCluster(FrequencyTable table, int num_cores)
    : table_(std::move(table)), num_cores_(num_cores), online_cores_(num_cores)
{
    AEO_ASSERT(num_cores_ >= 1, "cluster needs at least one core");
}

void
CpuCluster::SetLevel(int level)
{
    AEO_ASSERT(level >= 0 && level < table_.size(), "level %d out of [0, %d)",
               level, table_.size());
    if (level == level_) {
        return;
    }
    if (pre_change_) {
        pre_change_();
    }
    level_ = level;
    ++transition_count_;
    if (post_change_) {
        post_change_();
    }
}

void
CpuCluster::SetOnlineCores(int cores)
{
    AEO_ASSERT(cores >= 1 && cores <= num_cores_, "online cores %d out of [1, %d]",
               cores, num_cores_);
    if (cores == online_cores_) {
        return;
    }
    if (pre_change_) {
        pre_change_();
    }
    online_cores_ = cores;
    if (post_change_) {
        post_change_();
    }
}

void
CpuCluster::SetPreChangeListener(std::function<void()> listener)
{
    pre_change_ = std::move(listener);
}

void
CpuCluster::SetPostChangeListener(std::function<void()> listener)
{
    post_change_ = std::move(listener);
}

}  // namespace aeo
