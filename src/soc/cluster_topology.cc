#include "soc/cluster_topology.h"

#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

std::string
ClusterRoleName(ClusterRole role)
{
    switch (role) {
      case ClusterRole::kUnified:
        return "unified";
      case ClusterRole::kLittle:
        return "little";
      case ClusterRole::kBig:
        return "big";
    }
    AEO_PANIC("unreachable cluster role");
}

FrequencyTable
MakePlaceholderFrequencyTable()
{
    std::vector<OppEntry> entries;
    entries.push_back(OppEntry{Gigahertz(1.0), Volts(1.0)});
    return FrequencyTable(std::move(entries));
}

std::string
ThreadPlacementName(ThreadPlacement placement)
{
    switch (placement) {
      case ThreadPlacement::kLittleOnly:
        return "little";
      case ThreadPlacement::kBigOnly:
        return "big";
      case ThreadPlacement::kBoth:
        return "both";
    }
    AEO_PANIC("unreachable thread placement");
}

ClusterTopology::ClusterTopology(ClusterSpec unified, BandwidthTable bw_table)
    : bw_table_(std::move(bw_table))
{
    clusters_.push_back(std::move(unified));
    Validate();
}

ClusterTopology::ClusterTopology(ClusterSpec big, ClusterSpec little,
                                 BandwidthTable bw_table, PlacementModel placement)
    : bw_table_(std::move(bw_table)), placement_(placement)
{
    clusters_.push_back(std::move(big));
    clusters_.push_back(std::move(little));
    Validate();
}

const ClusterSpec&
ClusterTopology::cluster(int index) const
{
    AEO_ASSERT(index >= 0 && index < num_clusters(), "cluster index %d out of range",
               index);
    return clusters_[static_cast<size_t>(index)];
}

const ClusterSpec&
ClusterTopology::little() const
{
    AEO_ASSERT(is_heterogeneous(), "homogeneous topology has no LITTLE cluster");
    return clusters_[1];
}

std::vector<ThreadPlacement>
ClusterTopology::AdmissiblePlacements() const
{
    if (!is_heterogeneous()) {
        return {ThreadPlacement::kBigOnly};
    }
    return {ThreadPlacement::kLittleOnly, ThreadPlacement::kBigOnly,
            ThreadPlacement::kBoth};
}

void
ClusterTopology::Validate() const
{
    AEO_ASSERT(!clusters_.empty() && clusters_.size() <= 2,
               "topology must have 1 or 2 clusters, got %zu", clusters_.size());
    for (const ClusterSpec& spec : clusters_) {
        AEO_ASSERT(spec.num_cores > 0, "cluster '%s' has no cores",
                   spec.name.c_str());
        AEO_ASSERT(spec.first_cpu >= 0, "cluster '%s' first_cpu negative",
                   spec.name.c_str());
        AEO_ASSERT(spec.table.size() > 0, "cluster '%s' has an empty OPP table",
                   spec.name.c_str());
        AEO_ASSERT(spec.perf_scale > 0.0, "cluster '%s' perf_scale must be > 0",
                   spec.name.c_str());
        AEO_ASSERT(spec.dyn_power_scale > 0.0 && spec.leak_power_scale > 0.0,
                   "cluster '%s' power scales must be > 0", spec.name.c_str());
    }
    if (clusters_.size() == 2) {
        const ClusterSpec& big = clusters_[0];
        const ClusterSpec& little = clusters_[1];
        AEO_ASSERT(big.role == ClusterRole::kBig &&
                       little.role == ClusterRole::kLittle,
                   "heterogeneous topology must order [big, little]");
        AEO_ASSERT(big.perf_scale > little.perf_scale,
                   "big cluster must out-perform LITTLE per core");
        // The two policy domains must not overlap in CPU numbering.
        const bool disjoint =
            big.first_cpu >= little.first_cpu + little.num_cores ||
            little.first_cpu >= big.first_cpu + big.num_cores;
        AEO_ASSERT(disjoint, "cluster CPU ranges overlap");
        AEO_ASSERT(placement_.span_penalty >= 0.0 && placement_.span_penalty < 1.0,
                   "span penalty %f out of [0, 1)", placement_.span_penalty);
    }
}

std::string
HetConfig::ToString() const
{
    return StrFormat("(b%d, l%d, w%d, %s)", big_level + 1, little_level + 1,
                     bw_level + 1, ThreadPlacementName(placement).c_str());
}

uint64_t
EncodeHetConfigId(long long big_khz, long long little_khz, long long bw_mbps,
                  ThreadPlacement placement)
{
    AEO_ASSERT(big_khz >= 0 && big_khz < (1LL << 22), "big kHz %lld out of range",
               big_khz);
    AEO_ASSERT(little_khz >= 0 && little_khz < (1LL << 22),
               "little kHz %lld out of range", little_khz);
    AEO_ASSERT(bw_mbps >= 0 && bw_mbps < (1LL << 18), "bw MBps %lld out of range",
               bw_mbps);
    return (static_cast<uint64_t>(big_khz) << 42) |
           (static_cast<uint64_t>(little_khz) << 20) |
           (static_cast<uint64_t>(bw_mbps) << 2) |
           static_cast<uint64_t>(placement);
}

uint64_t
HetConfigId(const ClusterTopology& topology, const HetConfig& config)
{
    const long long big_khz = std::llround(
        topology.primary().table.FrequencyAt(config.big_level).kilohertz());
    const long long little_khz =
        topology.is_heterogeneous()
            ? std::llround(topology.little().table.FrequencyAt(config.little_level)
                               .kilohertz())
            : 0;
    const long long bw_mbps = std::llround(
        topology.bandwidth_table().BandwidthAt(config.bw_level).value());
    return EncodeHetConfigId(big_khz, little_khz, bw_mbps, config.placement);
}

}  // namespace aeo
