/**
 * @file
 * The Nexus 6 platform specification: the exact CPU-frequency and
 * memory-bandwidth tables from Table II of the paper, with a calibrated
 * voltage curve for the Krait 450 cluster.
 */
#ifndef AEO_SOC_NEXUS6_H_
#define AEO_SOC_NEXUS6_H_

#include "soc/bandwidth_table.h"
#include "soc/cluster_topology.h"
#include "soc/frequency_table.h"

namespace aeo {

/** Number of CPU frequency levels on the Nexus 6 (Table II). */
inline constexpr int kNexus6CpuLevels = 18;

/** Number of memory-bandwidth levels on the Nexus 6 (Table II). */
inline constexpr int kNexus6BwLevels = 13;

/** Number of Krait 450 cores. */
inline constexpr int kNexus6Cores = 4;

/** Builds the 18-entry Nexus 6 CPU OPP table (frequencies from Table II). */
FrequencyTable MakeNexus6FrequencyTable();

/** Builds the 13-entry Nexus 6 bandwidth table (bandwidths from Table II). */
BandwidthTable MakeNexus6BandwidthTable();

/** The Nexus 6 as a (single-cluster) topology: one unified Krait 450
 * domain. Devices built from it are bit-identical to the historical
 * hard-coded single-cluster construction. */
ClusterTopology MakeNexus6Topology();

}  // namespace aeo

#endif  // AEO_SOC_NEXUS6_H_
