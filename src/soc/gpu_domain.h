/**
 * @file
 * The GPU frequency domain (Adreno 420 on the Nexus 6).
 *
 * §VII of the paper names GPU frequency as the first extension target for
 * the control framework ("Our next steps are to include GPU frequencies,
 * network packet rate, etc."). The GPU renders in proportion to the
 * application's progress (render work per giga-instruction of app work);
 * when the GPU cannot keep up it becomes a co-bottleneck and throttles the
 * application's effective rate.
 */
#ifndef AEO_SOC_GPU_DOMAIN_H_
#define AEO_SOC_GPU_DOMAIN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"

namespace aeo {

/** One GPU operating point. */
struct GpuOpp {
    /** Core clock, MHz. */
    double mhz;
    /** Rail voltage. */
    Volts voltage;
};

/** A DVFS-capable GPU with discrete frequency levels. */
class GpuDomain {
  public:
    /** @param opps Operating points in strictly increasing frequency. */
    explicit GpuDomain(std::vector<GpuOpp> opps);

    /** Number of levels. */
    int size() const { return static_cast<int>(opps_.size()); }

    /** Current 0-based level. */
    int level() const { return level_; }

    /** Lowest level. */
    int min_level() const { return 0; }

    /** Highest level. */
    int max_level() const { return size() - 1; }

    /** Clock at @p level, MHz. */
    double MhzAt(int level) const;

    /** Voltage at @p level. */
    Volts VoltageAt(int level) const;

    /** Current clock, MHz. */
    double mhz() const { return MhzAt(level_); }

    /** Current voltage. */
    Volts voltage() const { return VoltageAt(level_); }

    /**
     * Render capacity at @p level in abstract render-units per second
     * (1 unit/s per MHz: capacity is frequency-proportional).
     */
    double CapacityAt(int level) const { return MhzAt(level); }

    /** The level whose clock is closest to @p mhz. */
    int ClosestLevel(double mhz) const;

    /** Smallest level with clock ≥ @p mhz; max_level() if none. */
    int LevelAtOrAbove(double mhz) const;

    /** Switches levels; counts a transition when it changes. */
    void SetLevel(int level);

    /** Registers a callback invoked *before* any state change. */
    void SetPreChangeListener(std::function<void()> listener);

    /** Registers a callback invoked *after* any state change. */
    void SetPostChangeListener(std::function<void()> listener);

    /** Number of frequency transitions performed. */
    uint64_t transition_count() const { return transition_count_; }

  private:
    std::vector<GpuOpp> opps_;
    int level_ = 0;
    uint64_t transition_count_ = 0;
    std::function<void()> pre_change_;
    std::function<void()> post_change_;
};

/** Builds the Adreno 420 operating-point table. */
GpuDomain MakeAdreno420();

/** Number of Adreno 420 frequency levels. */
inline constexpr int kAdreno420Levels = 5;

}  // namespace aeo

#endif  // AEO_SOC_GPU_DOMAIN_H_
