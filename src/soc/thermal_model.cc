#include "soc/thermal_model.h"

#include <cmath>

#include "common/logging.h"

namespace aeo {

ThermalModel::ThermalModel(ThermalParams params)
    : params_(params), temp_c_(params.ambient_c)
{
    AEO_ASSERT(params_.resistance_c_per_w > 0.0,
               "thermal resistance must be positive");
    AEO_ASSERT(params_.capacitance_j_per_c > 0.0,
               "thermal capacitance must be positive");
}

void
ThermalModel::Advance(Milliwatts power, SimTime dt)
{
    AEO_ASSERT(dt >= SimTime::Zero(), "negative thermal timestep");
    if (dt == SimTime::Zero()) {
        return;
    }
    const double t_inf = SteadyStateC(power);
    const double rc = params_.resistance_c_per_w * params_.capacitance_j_per_c;
    temp_c_ = t_inf + (temp_c_ - t_inf) * std::exp(-dt.seconds() / rc);
}

double
ThermalModel::SteadyStateC(Milliwatts power) const
{
    return params_.ambient_c + power.value() / 1000.0 * params_.resistance_c_per_w;
}

SimTime
ThermalModel::TimeConstant() const
{
    return SimTime::FromSecondsF(params_.resistance_c_per_w *
                                 params_.capacitance_j_per_c);
}

void
ThermalModel::Reset(double temp_c)
{
    temp_c_ = temp_c;
}

}  // namespace aeo
