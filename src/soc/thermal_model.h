/**
 * @file
 * A deterministic lumped-RC thermal model of the SoC package.
 *
 * Dissipated device power heats one thermal mass; heat leaks to ambient
 * through a fixed junction-to-ambient resistance. Between events the power
 * is piecewise-constant (the device model guarantees it), so each segment
 * integrates the first-order response exactly:
 *
 *   T(t + dt) = T_inf + (T(t) − T_inf) · exp(−dt / RC),   T_inf = T_amb + P·R
 *
 * which is unconditionally stable and bit-reproducible regardless of how
 * the simulation slices time. The msm_thermal driver (src/kernel) polls the
 * resulting zone temperature and clamps the CPU frequency table in stages —
 * the silent-throttling failure mode documented for commercial mobile
 * platforms (arXiv:1904.09814).
 */
#ifndef AEO_SOC_THERMAL_MODEL_H_
#define AEO_SOC_THERMAL_MODEL_H_

#include "common/units.h"
#include "sim/time.h"

namespace aeo {

/** Lumped thermal constants (defaults give a phone-like response). */
struct ThermalParams {
    /** Ambient (and initial) temperature, °C. */
    double ambient_c = 25.0;
    /**
     * Junction-to-ambient thermal resistance, °C/W. With 8 °C/W a 2.5 W
     * sustained load settles 20 °C above ambient — the regime where the
     * Nexus 6's msm_thermal starts stepping the frequency table down.
     */
    double resistance_c_per_w = 8.0;
    /** Effective package heat capacity, J/°C (sets the RC time constant). */
    double capacitance_j_per_c = 6.0;
};

/** Integrates package temperature from piecewise-constant power. */
class ThermalModel {
  public:
    explicit ThermalModel(ThermalParams params = {});

    /** Advances the temperature across a segment of constant power. */
    void Advance(Milliwatts power, SimTime dt);

    /** Current package temperature, °C. */
    double temperature_c() const { return temp_c_; }

    /** Steady-state temperature a constant power level would reach, °C. */
    double SteadyStateC(Milliwatts power) const;

    /** Thermal time constant RC. */
    SimTime TimeConstant() const;

    /** Resets to @p temp_c (construction resets to ambient). */
    void Reset(double temp_c);

    const ThermalParams& params() const { return params_; }

  private:
    ThermalParams params_;
    double temp_c_;
};

}  // namespace aeo

#endif  // AEO_SOC_THERMAL_MODEL_H_
