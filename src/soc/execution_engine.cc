#include "soc/execution_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aeo {

ExecutionEngine::ExecutionEngine(ExecutionModelParams params) : params_(params)
{
    AEO_ASSERT(params_.bandwidth_efficiency > 0.0 && params_.bandwidth_efficiency <= 1.0,
               "bandwidth efficiency %f out of (0, 1]", params_.bandwidth_efficiency);
    AEO_ASSERT(params_.background_share >= 0.0 && params_.background_share < 1.0,
               "background share %f out of [0, 1)", params_.background_share);
}

ExecutionRates
ExecutionEngine::ComputeWith(const WorkloadDemand& demand, Gigahertz freq,
                             double effective_gbps, double max_cores) const
{
    AEO_ASSERT(demand.ipc > 0.0, "ipc must be positive");
    AEO_ASSERT(demand.parallelism > 0.0, "parallelism must be positive");
    AEO_ASSERT(demand.mem_bytes_per_instr >= 0.0, "negative memory intensity");

    ExecutionRates rates;
    const double usable_cores = std::min(demand.parallelism, max_cores);
    if (usable_cores <= 0.0 || effective_gbps <= 0.0) {
        return rates;
    }

    // Per-instruction time in nanoseconds: compute + memory, serialized.
    const double t_cpu_ns = 1.0 / (freq.value() * demand.ipc * usable_cores);
    const double t_mem_ns = demand.mem_bytes_per_instr / effective_gbps;
    const double capacity_gips = 1.0 / (t_cpu_ns + t_mem_ns);

    rates.capacity_gips = capacity_gips;
    rates.gips = std::min(demand.demand_gips, capacity_gips);
    // Memory-stall time occupies the issuing core, so busy time is the full
    // per-instruction latency (matches how Linux accounts CPU load).
    rates.busy_cores = rates.gips / capacity_gips * usable_cores;
    rates.mem_gbps = rates.gips * demand.mem_bytes_per_instr +
                     rates.busy_cores * params_.prefetch_gbps_per_busy_core;
    return rates;
}

ExecutionRates
ExecutionEngine::Compute(const WorkloadDemand& demand, Gigahertz freq,
                         MegabytesPerSecond bandwidth, int online_cores) const
{
    const double effective_gbps =
        bandwidth.value() / 1000.0 * params_.bandwidth_efficiency;
    return ComputeWith(demand, freq, effective_gbps,
                       static_cast<double>(online_cores));
}

ExecutionEngine::PoolAssignment
ExecutionEngine::AssignPool(double parallelism, double big_eq_ghz,
                            double big_cores, double little_eq_ghz,
                            double little_cores, bool big_first,
                            double span_penalty)
{
    PoolAssignment pool;
    double remaining = parallelism;
    if (big_first) {
        pool.big_cores = std::min(remaining, big_cores);
        remaining -= pool.big_cores;
        pool.little_cores = std::min(remaining, little_cores);
    } else {
        pool.little_cores = std::min(remaining, little_cores);
        remaining -= pool.little_cores;
        pool.big_cores = std::min(remaining, big_cores);
    }
    pool.cores = pool.big_cores + pool.little_cores;
    pool.throughput_ghz =
        pool.big_cores * big_eq_ghz + pool.little_cores * little_eq_ghz;
    if (pool.big_cores > 0.0 && pool.little_cores > 0.0) {
        pool.throughput_ghz *= 1.0 - span_penalty;
    }
    return pool;
}

ExecutionRates
ExecutionEngine::ComputeWithPool(const WorkloadDemand& demand,
                                 const PoolAssignment& pool,
                                 double effective_gbps) const
{
    AEO_ASSERT(demand.ipc > 0.0, "ipc must be positive");
    AEO_ASSERT(demand.mem_bytes_per_instr >= 0.0, "negative memory intensity");

    ExecutionRates rates;
    if (pool.cores <= 0.0 || pool.throughput_ghz <= 0.0 ||
        effective_gbps <= 0.0) {
        return rates;
    }
    // Same serial compute + memory latency as ComputeWith, with the pool's
    // aggregate throughput standing in for freq × usable_cores.
    const double t_cpu_ns = 1.0 / (pool.throughput_ghz * demand.ipc);
    const double t_mem_ns = demand.mem_bytes_per_instr / effective_gbps;
    const double capacity_gips = 1.0 / (t_cpu_ns + t_mem_ns);

    rates.capacity_gips = capacity_gips;
    rates.gips = std::min(demand.demand_gips, capacity_gips);
    rates.busy_cores = rates.gips / capacity_gips * pool.cores;
    rates.mem_gbps = rates.gips * demand.mem_bytes_per_instr +
                     rates.busy_cores * params_.prefetch_gbps_per_busy_core;
    return rates;
}

HetExecutionRates
ExecutionEngine::ComputeSharedHet(const WorkloadDemand& foreground,
                                  const WorkloadDemand& background,
                                  const ClusterOperatingPoint& big,
                                  const ClusterOperatingPoint& little,
                                  ThreadPlacement placement,
                                  double span_penalty,
                                  MegabytesPerSecond bandwidth) const
{
    HetExecutionRates het;
    const double total_gbps =
        bandwidth.value() / 1000.0 * params_.bandwidth_efficiency;
    const double big_eq = big.frequency.value() * big.perf_scale;
    const double little_eq = little.frequency.value() * little.perf_scale;
    const double big_cores = static_cast<double>(big.online_cores);
    const double little_cores = static_cast<double>(little.online_cores);

    // Background: LITTLE-first (Android's HMP bias for background resident
    // tasks), over the background share of each cluster, capped at its
    // share of the pool's compute throughput — the het analogue of
    // ComputeShared's demand cap.
    WorkloadDemand bg = background;
    const PoolAssignment bg_pool = AssignPool(
        bg.parallelism, big_eq, big_cores * params_.background_share,
        little_eq, little_cores * params_.background_share,
        /*big_first=*/false, span_penalty);
    const PoolAssignment bg_cap_pool =
        AssignPool(bg.parallelism, big_eq, big_cores, little_eq, little_cores,
                   /*big_first=*/false, span_penalty);
    bg.demand_gips =
        std::min(bg.demand_gips, params_.background_share *
                                     bg_cap_pool.throughput_ghz * bg.ipc);
    het.background = ComputeWithPool(bg, bg_pool,
                                     total_gbps * params_.background_share);
    const double bg_share =
        bg_pool.cores > 0.0 ? het.background.busy_cores / bg_pool.cores : 0.0;
    const double bg_big_busy = bg_pool.big_cores * bg_share;
    const double bg_little_busy = bg_pool.little_cores * bg_share;

    // Foreground: the placement's clusters, minus what the background holds,
    // fastest-core-first. A fully-occupied pool still yields a residual
    // quarter core, like the homogeneous path.
    double fg_big_cores =
        placement == ThreadPlacement::kLittleOnly
            ? 0.0
            : std::max(0.0, big_cores - bg_big_busy);
    double fg_little_cores =
        placement == ThreadPlacement::kBigOnly
            ? 0.0
            : std::max(0.0, little_cores - bg_little_busy);
    if (fg_big_cores + fg_little_cores < 0.25) {
        if (placement == ThreadPlacement::kLittleOnly) {
            fg_little_cores = 0.25;
        } else {
            fg_big_cores = 0.25;
        }
    }
    const PoolAssignment fg_pool =
        AssignPool(foreground.parallelism, big_eq, fg_big_cores, little_eq,
                   fg_little_cores, /*big_first=*/true, span_penalty);
    const double remaining_gbps =
        std::max(1e-9, total_gbps - het.background.mem_gbps);
    het.foreground = ComputeWithPool(foreground, fg_pool, remaining_gbps);
    const double fg_share =
        fg_pool.cores > 0.0 ? het.foreground.busy_cores / fg_pool.cores : 0.0;

    het.big_busy_cores = bg_big_busy + fg_pool.big_cores * fg_share;
    het.little_busy_cores = bg_little_busy + fg_pool.little_cores * fg_share;

    // Busiest-core load per cluster: a workload's assigned cores run in
    // lockstep at its utilization, so each cluster sees the max over the
    // workloads using it.
    const double fg_load = het.foreground.capacity_gips > 0.0
                               ? std::min(1.0, het.foreground.gips /
                                                   het.foreground.capacity_gips)
                               : 0.0;
    const double bg_load = het.background.capacity_gips > 0.0
                               ? std::min(1.0, het.background.gips /
                                                   het.background.capacity_gips)
                               : 0.0;
    het.big_max_core_load =
        std::max(fg_pool.big_cores > 0.0 ? fg_load : 0.0,
                 bg_pool.big_cores > 0.0 ? bg_load : 0.0);
    het.little_max_core_load =
        std::max(fg_pool.little_cores > 0.0 ? fg_load : 0.0,
                 bg_pool.little_cores > 0.0 ? bg_load : 0.0);
    return het;
}

SharedExecutionRates
ExecutionEngine::ComputeShared(const WorkloadDemand& foreground,
                               const WorkloadDemand& background, Gigahertz freq,
                               MegabytesPerSecond bandwidth, int online_cores) const
{
    SharedExecutionRates shared;
    const double total_gbps =
        bandwidth.value() / 1000.0 * params_.bandwidth_efficiency;
    const double cores = static_cast<double>(online_cores);

    // Background first, capped at its share of cores and bandwidth. The
    // kernel keeps background residents alive regardless of foreground load.
    WorkloadDemand bg = background;
    bg.demand_gips = std::min(bg.demand_gips,
                              params_.background_share *
                                  (freq.value() * bg.ipc * bg.parallelism));
    shared.background = ComputeWith(bg, freq, total_gbps * params_.background_share,
                                    cores * params_.background_share);

    // Foreground sees the leftover bandwidth and cores.
    const double remaining_gbps =
        std::max(1e-9, total_gbps - shared.background.mem_gbps);
    const double remaining_cores =
        std::max(0.25, cores - shared.background.busy_cores);
    shared.foreground =
        ComputeWith(foreground, freq, remaining_gbps, remaining_cores);
    return shared;
}

}  // namespace aeo
