#include "soc/execution_engine.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aeo {

ExecutionEngine::ExecutionEngine(ExecutionModelParams params) : params_(params)
{
    AEO_ASSERT(params_.bandwidth_efficiency > 0.0 && params_.bandwidth_efficiency <= 1.0,
               "bandwidth efficiency %f out of (0, 1]", params_.bandwidth_efficiency);
    AEO_ASSERT(params_.background_share >= 0.0 && params_.background_share < 1.0,
               "background share %f out of [0, 1)", params_.background_share);
}

ExecutionRates
ExecutionEngine::ComputeWith(const WorkloadDemand& demand, Gigahertz freq,
                             double effective_gbps, double max_cores) const
{
    AEO_ASSERT(demand.ipc > 0.0, "ipc must be positive");
    AEO_ASSERT(demand.parallelism > 0.0, "parallelism must be positive");
    AEO_ASSERT(demand.mem_bytes_per_instr >= 0.0, "negative memory intensity");

    ExecutionRates rates;
    const double usable_cores = std::min(demand.parallelism, max_cores);
    if (usable_cores <= 0.0 || effective_gbps <= 0.0) {
        return rates;
    }

    // Per-instruction time in nanoseconds: compute + memory, serialized.
    const double t_cpu_ns = 1.0 / (freq.value() * demand.ipc * usable_cores);
    const double t_mem_ns = demand.mem_bytes_per_instr / effective_gbps;
    const double capacity_gips = 1.0 / (t_cpu_ns + t_mem_ns);

    rates.capacity_gips = capacity_gips;
    rates.gips = std::min(demand.demand_gips, capacity_gips);
    // Memory-stall time occupies the issuing core, so busy time is the full
    // per-instruction latency (matches how Linux accounts CPU load).
    rates.busy_cores = rates.gips / capacity_gips * usable_cores;
    rates.mem_gbps = rates.gips * demand.mem_bytes_per_instr +
                     rates.busy_cores * params_.prefetch_gbps_per_busy_core;
    return rates;
}

ExecutionRates
ExecutionEngine::Compute(const WorkloadDemand& demand, Gigahertz freq,
                         MegabytesPerSecond bandwidth, int online_cores) const
{
    const double effective_gbps =
        bandwidth.value() / 1000.0 * params_.bandwidth_efficiency;
    return ComputeWith(demand, freq, effective_gbps,
                       static_cast<double>(online_cores));
}

SharedExecutionRates
ExecutionEngine::ComputeShared(const WorkloadDemand& foreground,
                               const WorkloadDemand& background, Gigahertz freq,
                               MegabytesPerSecond bandwidth, int online_cores) const
{
    SharedExecutionRates shared;
    const double total_gbps =
        bandwidth.value() / 1000.0 * params_.bandwidth_efficiency;
    const double cores = static_cast<double>(online_cores);

    // Background first, capped at its share of cores and bandwidth. The
    // kernel keeps background residents alive regardless of foreground load.
    WorkloadDemand bg = background;
    bg.demand_gips = std::min(bg.demand_gips,
                              params_.background_share *
                                  (freq.value() * bg.ipc * bg.parallelism));
    shared.background = ComputeWith(bg, freq, total_gbps * params_.background_share,
                                    cores * params_.background_share);

    // Foreground sees the leftover bandwidth and cores.
    const double remaining_gbps =
        std::max(1e-9, total_gbps - shared.background.mem_gbps);
    const double remaining_cores =
        std::max(0.25, cores - shared.background.busy_cores);
    shared.foreground =
        ComputeWith(foreground, freq, remaining_gbps, remaining_cores);
    return shared;
}

}  // namespace aeo
