#include "soc/memory_bus.h"

#include <utility>

#include "common/logging.h"

namespace aeo {

MemoryBus::MemoryBus(BandwidthTable table) : table_(std::move(table)) {}

void
MemoryBus::SetLevel(int level)
{
    AEO_ASSERT(level >= 0 && level < table_.size(), "bandwidth level %d out of [0, %d)",
               level, table_.size());
    if (level == level_) {
        return;
    }
    if (pre_change_) {
        pre_change_();
    }
    level_ = level;
    ++transition_count_;
    if (post_change_) {
        post_change_();
    }
}

void
MemoryBus::SetPreChangeListener(std::function<void()> listener)
{
    pre_change_ = std::move(listener);
}

void
MemoryBus::SetPostChangeListener(std::function<void()> listener)
{
    post_change_ = std::move(listener);
}

}  // namespace aeo
