/**
 * @file
 * The CPU cluster model: four Krait-like cores sharing one clock domain.
 *
 * The paper sets all four cores to the same frequency (§IV-A), which matches
 * the Snapdragon 805's synchronous cluster, so the cluster is the unit of
 * DVFS here. The cluster records frequency-switch statistics needed by the
 * overhead analysis (§V-A1).
 */
#ifndef AEO_SOC_CPU_CLUSTER_H_
#define AEO_SOC_CPU_CLUSTER_H_

#include <cstdint>
#include <functional>

#include "soc/frequency_table.h"

namespace aeo {

/** A synchronous multi-core CPU cluster with discrete frequency levels. */
class CpuCluster {
  public:
    /**
     * @param table     The OPP table; copied in.
     * @param num_cores Number of cores sharing the clock.
     */
    CpuCluster(FrequencyTable table, int num_cores);

    /** The OPP table. */
    const FrequencyTable& table() const { return table_; }

    /** Number of cores in the cluster. */
    int num_cores() const { return num_cores_; }

    /** Number of currently online cores (hotplug can reduce this). */
    int online_cores() const { return online_cores_; }

    /** Current 0-based frequency level. */
    int level() const { return level_; }

    /** Current clock frequency. */
    Gigahertz frequency() const { return table_.FrequencyAt(level_); }

    /** Current rail voltage. */
    Volts voltage() const { return table_.VoltageAt(level_); }

    /**
     * Switches to @p level. Counts a transition when the level actually
     * changes and notifies the change listener (the device uses this to
     * re-integrate state).
     */
    void SetLevel(int level);

    /** Sets the number of online cores (1..num_cores). */
    void SetOnlineCores(int cores);

    /** Registers a callback invoked *before* any state change is applied. */
    void SetPreChangeListener(std::function<void()> listener);

    /** Registers a callback invoked *after* any state change is applied. */
    void SetPostChangeListener(std::function<void()> listener);

    /** Number of frequency transitions performed. */
    uint64_t transition_count() const { return transition_count_; }

  private:
    FrequencyTable table_;
    int num_cores_;
    int online_cores_;
    int level_ = 0;
    uint64_t transition_count_ = 0;
    std::function<void()> pre_change_;
    std::function<void()> post_change_;
};

}  // namespace aeo

#endif  // AEO_SOC_CPU_CLUSTER_H_
