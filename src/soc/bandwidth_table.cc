#include "soc/bandwidth_table.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

BandwidthTable::BandwidthTable(std::vector<MegabytesPerSecond> levels)
    : levels_(std::move(levels))
{
    AEO_ASSERT(!levels_.empty(), "bandwidth table must not be empty");
    for (size_t i = 1; i < levels_.size(); ++i) {
        AEO_ASSERT(levels_[i] > levels_[i - 1],
                   "bandwidths not strictly increasing at level %zu", i);
    }
}

MegabytesPerSecond
BandwidthTable::BandwidthAt(int level) const
{
    AEO_ASSERT(level >= 0 && level < size(), "bandwidth level %d out of [0, %d)",
               level, size());
    return levels_[static_cast<size_t>(level)];
}

int
BandwidthTable::LevelAtOrAbove(MegabytesPerSecond need) const
{
    for (int level = 0; level < size(); ++level) {
        if (levels_[static_cast<size_t>(level)] >= need) {
            return level;
        }
    }
    return max_level();
}

int
BandwidthTable::ClosestLevel(MegabytesPerSecond bw) const
{
    int best = 0;
    double best_dist = std::fabs(levels_[0].value() - bw.value());
    for (int level = 1; level < size(); ++level) {
        const double dist =
            std::fabs(levels_[static_cast<size_t>(level)].value() - bw.value());
        if (dist < best_dist) {
            best = level;
            best_dist = dist;
        }
    }
    return best;
}

std::string
BandwidthTable::PaperLabel(int level) const
{
    AEO_ASSERT(level >= 0 && level < size(), "bandwidth level %d out of [0, %d)",
               level, size());
    return StrFormat("%d", level + 1);
}

}  // namespace aeo
