/**
 * @file
 * An Exynos 5433-style big.LITTLE platform specification: a quad
 * Cortex-A57 performance cluster plus a quad Cortex-A53 efficiency
 * cluster, each with its own DVFS domain, sharing one memory bus. The
 * frequency ladders follow the production 5433 DVFS tables; power-scale
 * calibration follows the published A57/A53 per-core energy ratios
 * (Coutinho et al., PAPERS.md).
 */
#ifndef AEO_SOC_EXYNOS5433_H_
#define AEO_SOC_EXYNOS5433_H_

#include "soc/cluster_topology.h"

namespace aeo {

/** Number of A57 (big) frequency levels. */
inline constexpr int kExynos5433BigLevels = 7;

/** Number of A53 (LITTLE) frequency levels. */
inline constexpr int kExynos5433LittleLevels = 6;

/** Number of memory-bandwidth levels. */
inline constexpr int kExynos5433BwLevels = 8;

/** Cores per cluster (4 + 4). */
inline constexpr int kExynos5433CoresPerCluster = 4;

/** Builds the 7-entry A57 OPP table (700 MHz – 1.9 GHz). */
FrequencyTable MakeExynos5433BigTable();

/** Builds the 6-entry A53 OPP table (400 MHz – 1.3 GHz). */
FrequencyTable MakeExynos5433LittleTable();

/** Builds the 8-entry shared memory-bandwidth table. */
BandwidthTable MakeExynos5433BandwidthTable();

/** The full big.LITTLE topology: [a57 (policy4), a53 (policy0)]. The
 * matching power coefficients are MakeExynos5433PowerParams() in
 * power/power_model.h (the power layer sits above soc in the DAG). */
ClusterTopology MakeExynos5433Topology();

}  // namespace aeo

#endif  // AEO_SOC_EXYNOS5433_H_
