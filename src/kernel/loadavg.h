/**
 * @file
 * A /proc/loadavg model: exponentially-smoothed runnable-task count. The
 * paper uses it to characterize its three background-load scenarios
 * (§V-C reports 6.3 / 6.7 / 6.6 for BL / NL / HL).
 */
#ifndef AEO_KERNEL_LOADAVG_H_
#define AEO_KERNEL_LOADAVG_H_

#include "sim/time.h"

namespace aeo {

/** One-minute exponentially-weighted runnable-task average. */
class LoadAvg {
  public:
    /** @param resident_tasks Baseline runnable+resident task pressure. */
    explicit LoadAvg(double resident_tasks = 0.0);

    /**
     * Advances the average over @p dt during which @p runnable tasks
     * (busy cores plus queue) were active on top of the resident pressure.
     */
    void Advance(double runnable, SimTime dt);

    /** Current one-minute average. */
    double value() const { return value_; }

    /** Changes the resident pressure (background-load switches). */
    void set_resident_tasks(double tasks) { resident_tasks_ = tasks; }

  private:
    double resident_tasks_;
    double value_;
};

}  // namespace aeo

#endif  // AEO_KERNEL_LOADAVG_H_
