/**
 * @file
 * A virtual sysfs: the string-valued file tree through which Android
 * userspace (and our controller, exactly like the paper's) reads and writes
 * kernel tunables such as scaling_governor and scaling_setspeed (§IV-A).
 */
#ifndef AEO_KERNEL_SYSFS_H_
#define AEO_KERNEL_SYSFS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace aeo {

/** Read/write hooks backing one sysfs file. */
struct SysfsFile {
    /** Produces the file's current contents; required. */
    std::function<std::string()> read;
    /** Consumes a write; returns false to signal EINVAL. Null = read-only. */
    std::function<bool(const std::string&)> write;
};

/** A tree of virtual files addressed by absolute slash-separated paths. */
class Sysfs {
  public:
    Sysfs() = default;

    /** Registers a file; panics if the path is already taken. */
    void Register(const std::string& path, SysfsFile file);

    /** Removes a file if present. */
    void Unregister(const std::string& path);

    /** True if a file exists at @p path. */
    bool Exists(const std::string& path) const;

    /** Reads a file; Fatal() if it does not exist. */
    std::string Read(const std::string& path) const;

    /**
     * Writes a file.
     *
     * Fatal() if the file does not exist or is read-only; returns the file's
     * acceptance of the value (false = invalid value, like EINVAL).
     */
    bool Write(const std::string& path, const std::string& value);

    /** All registered paths with the given prefix, sorted. */
    std::vector<std::string> List(const std::string& prefix) const;

  private:
    std::map<std::string, SysfsFile> files_;
};

}  // namespace aeo

#endif  // AEO_KERNEL_SYSFS_H_
