/**
 * @file
 * A virtual sysfs: the string-valued file tree through which Android
 * userspace (and our controller, exactly like the paper's) reads and writes
 * kernel tunables such as scaling_governor and scaling_setspeed (§IV-A).
 *
 * Two access styles coexist:
 *
 *  - TryRead()/TryWrite() report failures as FaultErrc values. They are the
 *    path an optional FaultInjector hooks into, so injected ENOENT/EBUSY/
 *    EINVAL (and stale reads or latency spikes) propagate to hardened
 *    callers as data, never as Fatal().
 *  - The legacy Read()/Write() wrappers are thin asserting shims over the
 *    Try variants: they Fatal() on any error other than value rejection,
 *    preserving the behaviour existing callers were written against.
 *
 * Addressing is interned: every path resolves once to a SysfsHandle — an
 * index into a node table — and all access goes through nodes. Hot-path
 * callers (the config scheduler's per-dwell writes, the controller's
 * per-cycle cap/temperature reads) Open() their handles once and then pay
 * neither string construction nor a map lookup per operation; path-based
 * callers pay one hashed lookup (the intern table is an unordered_map with
 * heterogeneous string_view lookup, so no temporary std::string is built).
 */
#ifndef AEO_KERNEL_SYSFS_H_
#define AEO_KERNEL_SYSFS_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fault/fault_injector.h"

namespace aeo {

/** Read/write hooks backing one sysfs file. */
struct SysfsFile {
    /** Produces the file's current contents; required. */
    std::function<std::string()> read;
    /** Consumes a write; returns false to signal EINVAL. Null = read-only. */
    std::function<bool(const std::string&)> write;
};

/** Outcome of a TryRead(). */
struct SysfsReadResult {
    FaultErrc errc = FaultErrc::kOk;
    std::string value;

    bool ok() const { return errc == FaultErrc::kOk; }
};

/**
 * An interned sysfs path: open once, then read/write by index with no
 * per-operation string building or hashing. A handle stays valid for the
 * lifetime of the Sysfs that issued it, across Register/Unregister of the
 * underlying file (operations report ENOENT while the file is absent,
 * exactly like a path-based access).
 */
class SysfsHandle {
  public:
    SysfsHandle() = default;

    /** True once obtained from Sysfs::Open(). */
    bool valid() const { return index_ != static_cast<size_t>(-1); }

  private:
    friend class Sysfs;
    explicit SysfsHandle(size_t index) : index_(index) {}
    size_t index_ = static_cast<size_t>(-1);
};

/** A tree of virtual files addressed by absolute slash-separated paths. */
class Sysfs {
  public:
    Sysfs() = default;

    /** Registers a file; panics naming the conflicting path if taken. */
    void Register(const std::string& path, SysfsFile file);

    /** Removes a file if present. */
    void Unregister(std::string_view path);

    /**
     * Interns @p path and returns its handle. Idempotent; the file need not
     * be registered (yet) — an access through the handle then reports
     * ENOENT, exactly like the path-based calls.
     */
    SysfsHandle Open(std::string_view path) const;

    /** The absolute path a handle was opened for. */
    const std::string& PathOf(SysfsHandle handle) const;

    /** True if a file exists at @p path (and has not disappeared under
     * injected hotplug-style faults). */
    bool Exists(std::string_view path) const;

    /**
     * Reads a file, reporting failure as a value: kNoEnt when the path is
     * absent (or has disappeared under fault injection) and any injected
     * error otherwise. A stale-read fault serves the previous successfully
     * read contents — indistinguishable from a fresh value, as on hardware.
     */
    SysfsReadResult TryRead(std::string_view path) const;

    /** Handle variant of TryRead(); no per-call lookup or allocation. */
    SysfsReadResult TryRead(SysfsHandle handle) const;

    /**
     * Writes a file, reporting failure as a value: kNoEnt when absent,
     * kPerm when read-only, kInval when the file rejects the value, or any
     * injected error.
     */
    FaultErrc TryWrite(std::string_view path, const std::string& value);

    /** Handle variant of TryWrite(); no per-call lookup or allocation. */
    FaultErrc TryWrite(SysfsHandle handle, const std::string& value);

    /**
     * Reads a file that may legitimately be absent (e.g. the input_boost
     * node some kernels lack): returns @p fallback on any failure.
     */
    std::string ReadOrDefault(std::string_view path,
                              const std::string& fallback) const;

    /** Asserting shim over TryRead(); Fatal() on any failure. */
    std::string Read(std::string_view path) const;

    /** Asserting shim over TryRead(SysfsHandle); Fatal() on any failure. */
    std::string Read(SysfsHandle handle) const;

    /**
     * Asserting shim over TryWrite(): Fatal() if the file does not exist or
     * is read-only; returns the file's acceptance of the value (false =
     * invalid value, like EINVAL).
     */
    bool Write(std::string_view path, const std::string& value);

    /** Asserting shim over TryWrite(SysfsHandle). */
    bool Write(SysfsHandle handle, const std::string& value);

    /** All registered paths with the given prefix, sorted. */
    std::vector<std::string> List(std::string_view prefix) const;

    /** Hooks an injector into the Try paths; nullptr disables injection.
     * Not owned; must outlive the sysfs or be unhooked first. */
    void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

    /** The hooked injector, if any. */
    FaultInjector* fault_injector() const { return injector_; }

    /** Added latency the most recent Try operation suffered (zero when no
     * spike fired); callers that model time can charge it to their budget. */
    SimTime last_injected_latency() const { return last_latency_; }

  private:
    /** Transparent hasher: lookups by string_view build no temporaries. */
    struct StringHash {
        using is_transparent = void;
        size_t
        operator()(std::string_view text) const
        {
            return std::hash<std::string_view>{}(text);
        }
    };

    /** One interned path: resolution cache + stale-read cache. */
    struct Node {
        std::string path;
        /** Resolved registration, revalidated when generation_ moves. */
        const SysfsFile* file = nullptr;
        uint64_t seen_generation = 0;
        /** Last good contents, serving injected stale reads. */
        std::string last_good;
        bool has_last_good = false;
    };

    /** The node behind a handle, with its registration freshly resolved. */
    Node& ResolveNode(SysfsHandle handle) const;

    std::unordered_map<std::string, SysfsFile, StringHash, std::equal_to<>> files_;
    /** Interned path -> node index; nodes never disappear. */
    mutable std::unordered_map<std::string, size_t, StringHash, std::equal_to<>>
        intern_;
    /** Deque: node addresses stay stable as new paths intern. */
    mutable std::deque<Node> nodes_;
    /** Bumped by Register/Unregister to invalidate cached resolutions. */
    uint64_t generation_ = 1;
    FaultInjector* injector_ = nullptr;
    mutable SimTime last_latency_ = SimTime::Zero();
};

}  // namespace aeo

#endif  // AEO_KERNEL_SYSFS_H_
