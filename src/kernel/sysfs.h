/**
 * @file
 * A virtual sysfs: the string-valued file tree through which Android
 * userspace (and our controller, exactly like the paper's) reads and writes
 * kernel tunables such as scaling_governor and scaling_setspeed (§IV-A).
 *
 * Two access styles coexist:
 *
 *  - TryRead()/TryWrite() report failures as FaultErrc values. They are the
 *    path an optional FaultInjector hooks into, so injected ENOENT/EBUSY/
 *    EINVAL (and stale reads or latency spikes) propagate to hardened
 *    callers as data, never as Fatal().
 *  - The legacy Read()/Write() wrappers are thin asserting shims over the
 *    Try variants: they Fatal() on any error other than value rejection,
 *    preserving the behaviour existing callers were written against.
 */
#ifndef AEO_KERNEL_SYSFS_H_
#define AEO_KERNEL_SYSFS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_injector.h"

namespace aeo {

/** Read/write hooks backing one sysfs file. */
struct SysfsFile {
    /** Produces the file's current contents; required. */
    std::function<std::string()> read;
    /** Consumes a write; returns false to signal EINVAL. Null = read-only. */
    std::function<bool(const std::string&)> write;
};

/** Outcome of a TryRead(). */
struct SysfsReadResult {
    FaultErrc errc = FaultErrc::kOk;
    std::string value;

    bool ok() const { return errc == FaultErrc::kOk; }
};

/** A tree of virtual files addressed by absolute slash-separated paths. */
class Sysfs {
  public:
    Sysfs() = default;

    /** Registers a file; panics naming the conflicting path if taken. */
    void Register(const std::string& path, SysfsFile file);

    /** Removes a file if present. */
    void Unregister(const std::string& path);

    /** True if a file exists at @p path (and has not disappeared under
     * injected hotplug-style faults). */
    bool Exists(const std::string& path) const;

    /**
     * Reads a file, reporting failure as a value: kNoEnt when the path is
     * absent (or has disappeared under fault injection) and any injected
     * error otherwise. A stale-read fault serves the previous successfully
     * read contents — indistinguishable from a fresh value, as on hardware.
     */
    SysfsReadResult TryRead(const std::string& path) const;

    /**
     * Writes a file, reporting failure as a value: kNoEnt when absent,
     * kPerm when read-only, kInval when the file rejects the value, or any
     * injected error.
     */
    FaultErrc TryWrite(const std::string& path, const std::string& value);

    /**
     * Reads a file that may legitimately be absent (e.g. the input_boost
     * node some kernels lack): returns @p fallback on any failure.
     */
    std::string ReadOrDefault(const std::string& path,
                              const std::string& fallback) const;

    /** Asserting shim over TryRead(); Fatal() on any failure. */
    std::string Read(const std::string& path) const;

    /**
     * Asserting shim over TryWrite(): Fatal() if the file does not exist or
     * is read-only; returns the file's acceptance of the value (false =
     * invalid value, like EINVAL).
     */
    bool Write(const std::string& path, const std::string& value);

    /** All registered paths with the given prefix, sorted. */
    std::vector<std::string> List(const std::string& prefix) const;

    /** Hooks an injector into the Try paths; nullptr disables injection.
     * Not owned; must outlive the sysfs or be unhooked first. */
    void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

    /** The hooked injector, if any. */
    FaultInjector* fault_injector() const { return injector_; }

    /** Added latency the most recent Try operation suffered (zero when no
     * spike fired); callers that model time can charge it to their budget. */
    SimTime last_injected_latency() const { return last_latency_; }

  private:
    std::map<std::string, SysfsFile> files_;
    FaultInjector* injector_ = nullptr;
    /** Last good contents per path, serving injected stale reads. */
    mutable std::map<std::string, std::string> read_cache_;
    mutable SimTime last_latency_ = SimTime::Zero();
};

}  // namespace aeo

#endif  // AEO_KERNEL_SYSFS_H_
