/**
 * @file
 * Canonical sysfs mount points. Path literals are confined to src/kernel
 * and src/platform by lint (sysfs-literal, cluster-literal); every other
 * layer refers to these intern-once definitions.
 *
 * Single-cluster builds use the legacy per-cpu root (cpu0/cpufreq), the
 * node layout of the paper's Nexus 6 kernel. Multi-cluster SoCs expose one
 * policy directory per frequency domain named after its first CPU
 * (.../cpufreq/policy0, .../cpufreq/policy4), as Linux does on big.LITTLE.
 */
#ifndef AEO_KERNEL_SYSFS_ROOTS_H_
#define AEO_KERNEL_SYSFS_ROOTS_H_

#include <string>

namespace aeo {

/** Legacy single-cluster cpufreq root (the Nexus 6 build). */
inline constexpr const char kCpufreqSysfsRoot[] =
    "/sys/devices/system/cpu/cpu0/cpufreq";

/** The cpubw devfreq device. */
inline constexpr const char kDevfreqSysfsRoot[] =
    "/sys/class/devfreq/qcom,cpubw";

/** The GPU devfreq device. */
inline constexpr const char kGpuSysfsRoot[] =
    "/sys/class/kgsl/kgsl-3d0/devfreq";

/** Per-domain cpufreq policy directory, e.g. first_cpu 4 → ".../policy4". */
inline std::string
CpufreqPolicyRoot(int first_cpu)
{
    return "/sys/devices/system/cpu/cpufreq/policy" + std::to_string(first_cpu);
}

}  // namespace aeo

#endif  // AEO_KERNEL_SYSFS_ROOTS_H_
