#include "kernel/devfreq.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

DevfreqPolicy::DevfreqPolicy(Simulator* sim, MemoryBus* bus,
                             const BusTrafficMeter* traffic_meter, Sysfs* sysfs,
                             std::string sysfs_root)
    : sim_(sim),
      bus_(bus),
      traffic_meter_(traffic_meter),
      sysfs_(sysfs),
      sysfs_root_(std::move(sysfs_root))
{
    AEO_ASSERT(sim_ != nullptr && bus_ != nullptr && traffic_meter_ != nullptr &&
                   sysfs_ != nullptr,
               "devfreq policy wired with null dependency");
    max_level_limit_ = bus_->table().max_level();
    RegisterSysfsFiles();
}

DevfreqPolicy::~DevfreqPolicy()
{
    if (governor_) {
        governor_->Stop();
    }
}

void
DevfreqPolicy::RegisterGovernor(const std::string& name, DevfreqGovernorFactory factory)
{
    AEO_ASSERT(factory != nullptr, "null governor factory for '%s'", name.c_str());
    const auto [it, inserted] = factories_.emplace(name, std::move(factory));
    (void)it;
    AEO_ASSERT(inserted, "devfreq governor '%s' registered twice", name.c_str());
}

bool
DevfreqPolicy::SetGovernor(const std::string& name)
{
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
        return false;
    }
    if (governor_) {
        governor_->Stop();
        governor_.reset();
    }
    governor_ = it->second(this);
    AEO_ASSERT(governor_ != nullptr, "factory for '%s' returned null", name.c_str());
    governor_->Start();
    return true;
}

std::string
DevfreqPolicy::governor_name() const
{
    return governor_ ? governor_->name() : "none";
}

std::string
DevfreqPolicy::AvailableGovernors() const
{
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) {
        names.push_back(name);
    }
    return Join(names, " ");
}

void
DevfreqPolicy::RequestLevel(int level)
{
    const int clamped = std::clamp(level, min_level_limit_, max_level_limit_);
    bus_->SetLevel(clamped);
}

void
DevfreqPolicy::RequestBandwidthAtOrAbove(MegabytesPerSecond need)
{
    RequestLevel(table().LevelAtOrAbove(need));
}

void
DevfreqPolicy::SetLevelLimits(int min_level, int max_level)
{
    AEO_ASSERT(min_level >= 0 && max_level < table().size() && min_level <= max_level,
               "bad level limits [%d, %d]", min_level, max_level);
    min_level_limit_ = min_level;
    max_level_limit_ = max_level;
    RequestLevel(bus_->level());
}

void
DevfreqPolicy::RegisterSysfsFiles()
{
    const auto mbps_of = [](MegabytesPerSecond bw) {
        return StrFormat("%lld", static_cast<long long>(bw.value() + 0.5));
    };
    const auto parse_mbps = [](const std::string& value, MegabytesPerSecond* out) {
        long long mbps = 0;
        if (!ParseInt64(value, &mbps) || mbps <= 0) {
            return false;
        }
        *out = MegabytesPerSecond(static_cast<double>(mbps));
        return true;
    };

    sysfs_->Register(sysfs_root_ + "/governor",
                     SysfsFile{
                         [this] { return governor_name(); },
                         [this](const std::string& value) { return SetGovernor(Trim(value)); },
                     });

    sysfs_->Register(sysfs_root_ + "/available_governors",
                     SysfsFile{[this] { return AvailableGovernors(); }, nullptr});

    sysfs_->Register(sysfs_root_ + "/cur_freq",
                     SysfsFile{[this, mbps_of] { return mbps_of(bus_->bandwidth()); },
                               nullptr});

    sysfs_->Register(sysfs_root_ + "/available_frequencies",
                     SysfsFile{[this, mbps_of] {
                                   std::vector<std::string> fields;
                                   for (int level = 0; level < table().size(); ++level) {
                                       fields.push_back(mbps_of(table().BandwidthAt(level)));
                                   }
                                   return Join(fields, " ");
                               },
                               nullptr});

    sysfs_->Register(
        sysfs_root_ + "/min_freq",
        SysfsFile{[this, mbps_of] { return mbps_of(table().BandwidthAt(min_level_limit_)); },
                  [this, parse_mbps](const std::string& value) {
                      MegabytesPerSecond bw;
                      if (!parse_mbps(value, &bw)) {
                          return false;
                      }
                      const int level = table().ClosestLevel(bw);
                      if (level > max_level_limit_) {
                          return false;
                      }
                      SetLevelLimits(level, max_level_limit_);
                      return true;
                  }});

    sysfs_->Register(
        sysfs_root_ + "/max_freq",
        SysfsFile{[this, mbps_of] { return mbps_of(table().BandwidthAt(max_level_limit_)); },
                  [this, parse_mbps](const std::string& value) {
                      MegabytesPerSecond bw;
                      if (!parse_mbps(value, &bw)) {
                          return false;
                      }
                      const int level = table().ClosestLevel(bw);
                      if (level < min_level_limit_) {
                          return false;
                      }
                      SetLevelLimits(min_level_limit_, level);
                      return true;
                  }});

    sysfs_->Register(sysfs_root_ + "/userspace/set_freq",
                     SysfsFile{
                         [this, mbps_of] { return mbps_of(bus_->bandwidth()); },
                         [this, parse_mbps](const std::string& value) {
                             if (!governor_) {
                                 return false;
                             }
                             MegabytesPerSecond bw;
                             if (!parse_mbps(value, &bw)) {
                                 return false;
                             }
                             return governor_->SetBandwidth(bw);
                         },
                     });
}

}  // namespace aeo
