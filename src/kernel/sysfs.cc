#include "kernel/sysfs.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

void
Sysfs::Register(const std::string& path, SysfsFile file)
{
    AEO_ASSERT(!path.empty() && path.front() == '/', "sysfs path must be absolute: '%s'",
               path.c_str());
    AEO_ASSERT(file.read != nullptr, "sysfs file '%s' needs a reader", path.c_str());
    const auto [it, inserted] = files_.emplace(path, std::move(file));
    (void)it;
    AEO_ASSERT(inserted, "sysfs path '%s' registered twice", path.c_str());
}

void
Sysfs::Unregister(const std::string& path)
{
    files_.erase(path);
}

bool
Sysfs::Exists(const std::string& path) const
{
    return files_.find(path) != files_.end();
}

std::string
Sysfs::Read(const std::string& path) const
{
    const auto it = files_.find(path);
    if (it == files_.end()) {
        Fatal("sysfs read of nonexistent file '%s'", path.c_str());
    }
    return it->second.read();
}

bool
Sysfs::Write(const std::string& path, const std::string& value)
{
    const auto it = files_.find(path);
    if (it == files_.end()) {
        Fatal("sysfs write to nonexistent file '%s'", path.c_str());
    }
    if (it->second.write == nullptr) {
        Fatal("sysfs write to read-only file '%s'", path.c_str());
    }
    return it->second.write(value);
}

std::vector<std::string>
Sysfs::List(const std::string& prefix) const
{
    std::vector<std::string> out;
    for (const auto& [path, file] : files_) {
        if (StartsWith(path, prefix)) {
            out.push_back(path);
        }
    }
    return out;
}

}  // namespace aeo
