#include "kernel/sysfs.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

void
Sysfs::Register(const std::string& path, SysfsFile file)
{
    AEO_ASSERT(!path.empty() && path.front() == '/', "sysfs path must be absolute: '%s'",
               path.c_str());
    AEO_ASSERT(file.read != nullptr, "sysfs file '%s' needs a reader", path.c_str());
    const auto [it, inserted] = files_.emplace(path, std::move(file));
    (void)it;
    AEO_ASSERT(inserted,
               "sysfs path '%s' registered twice (conflicts with the existing "
               "registration at that path)",
               path.c_str());
}

void
Sysfs::Unregister(const std::string& path)
{
    files_.erase(path);
    read_cache_.erase(path);
}

bool
Sysfs::Exists(const std::string& path) const
{
    if (injector_ != nullptr && injector_->IsGone(path)) {
        return false;
    }
    return files_.find(path) != files_.end();
}

SysfsReadResult
Sysfs::TryRead(const std::string& path) const
{
    last_latency_ = SimTime::Zero();
    SysfsReadResult result;
    const auto it = files_.find(path);
    if (it == files_.end()) {
        result.errc = FaultErrc::kNoEnt;
        return result;
    }
    if (injector_ != nullptr) {
        const FaultDecision decision = injector_->OnRead(path);
        last_latency_ = decision.latency;
        if (!decision.ok()) {
            result.errc = decision.errc;
            return result;
        }
        if (decision.stale) {
            const auto cached = read_cache_.find(path);
            if (cached != read_cache_.end()) {
                result.value = cached->second;
                return result;
            }
            // Nothing cached yet: fall through to a genuine read.
        }
    }
    result.value = it->second.read();
    read_cache_[path] = result.value;
    return result;
}

FaultErrc
Sysfs::TryWrite(const std::string& path, const std::string& value)
{
    last_latency_ = SimTime::Zero();
    const auto it = files_.find(path);
    if (it == files_.end()) {
        return FaultErrc::kNoEnt;
    }
    std::string applied = value;
    if (injector_ != nullptr) {
        const FaultDecision decision = injector_->OnWrite(path);
        last_latency_ = decision.latency;
        if (!decision.ok()) {
            return decision.errc;
        }
        if (decision.silent_clamp) {
            // Silent clamp: the write is accepted but a scaled-down value
            // reaches the file — only read-back can expose the difference.
            // Non-numeric payloads (governor names) pass through unchanged.
            long long numeric = 0;
            if (ParseInt64(Trim(applied), &numeric) && numeric > 0) {
                const long long clamped = std::max(
                    1LL, static_cast<long long>(std::llround(
                             static_cast<double>(numeric) * decision.clamp_factor)));
                applied = StrFormat("%lld", clamped);
            }
        }
    }
    if (it->second.write == nullptr) {
        return FaultErrc::kPerm;
    }
    return it->second.write(applied) ? FaultErrc::kOk : FaultErrc::kInval;
}

std::string
Sysfs::ReadOrDefault(const std::string& path, const std::string& fallback) const
{
    const SysfsReadResult result = TryRead(path);
    return result.ok() ? result.value : fallback;
}

std::string
Sysfs::Read(const std::string& path) const
{
    const SysfsReadResult result = TryRead(path);
    if (!result.ok()) {
        Fatal("sysfs read of '%s' failed: %s", path.c_str(),
              FaultErrcName(result.errc));
    }
    return result.value;
}

bool
Sysfs::Write(const std::string& path, const std::string& value)
{
    const FaultErrc errc = TryWrite(path, value);
    switch (errc) {
    case FaultErrc::kOk:
        return true;
    case FaultErrc::kInval:
        return false;  // EINVAL stays a value, matching the documented API.
    default:
        Fatal("sysfs write to '%s' failed: %s", path.c_str(), FaultErrcName(errc));
    }
}

std::vector<std::string>
Sysfs::List(const std::string& prefix) const
{
    std::vector<std::string> out;
    for (const auto& [path, file] : files_) {
        if (StartsWith(path, prefix)) {
            out.push_back(path);
        }
    }
    return out;
}

}  // namespace aeo
