#include "kernel/sysfs.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

void
Sysfs::Register(const std::string& path, SysfsFile file)
{
    AEO_ASSERT(!path.empty() && path.front() == '/', "sysfs path must be absolute: '%s'",
               path.c_str());
    AEO_ASSERT(file.read != nullptr, "sysfs file '%s' needs a reader", path.c_str());
    const auto [it, inserted] = files_.emplace(path, std::move(file));
    (void)it;
    AEO_ASSERT(inserted,
               "sysfs path '%s' registered twice (conflicts with the existing "
               "registration at that path)",
               path.c_str());
    ++generation_;
}

void
Sysfs::Unregister(std::string_view path)
{
    const auto it = files_.find(path);
    if (it != files_.end()) {
        files_.erase(it);
        ++generation_;
    }
    const auto interned = intern_.find(path);
    if (interned != intern_.end()) {
        // Parity with the historical read-cache erase: a re-registered file
        // must not serve pre-removal contents as a stale read.
        nodes_[interned->second].last_good.clear();
        nodes_[interned->second].has_last_good = false;
    }
}

// aeo: hot-path-stop -- first-touch path interning: a handle's node is
// allocated once on the first Open of each path; steady-state lookups hit
// the intern map and allocate nothing.
SysfsHandle
Sysfs::Open(std::string_view path) const
{
    const auto it = intern_.find(path);
    if (it != intern_.end()) {
        return SysfsHandle(it->second);
    }
    const size_t index = nodes_.size();
    nodes_.emplace_back();
    nodes_.back().path = std::string(path);
    intern_.emplace(nodes_.back().path, index);
    return SysfsHandle(index);
}

const std::string&
Sysfs::PathOf(SysfsHandle handle) const
{
    AEO_ASSERT(handle.valid() && handle.index_ < nodes_.size(),
               "PathOf() on an unopened sysfs handle");
    return nodes_[handle.index_].path;
}

Sysfs::Node&
Sysfs::ResolveNode(SysfsHandle handle) const
{
    AEO_ASSERT(handle.valid() && handle.index_ < nodes_.size(),
               "sysfs access through an unopened handle");
    Node& node = nodes_[handle.index_];
    if (node.seen_generation != generation_) {
        const auto it = files_.find(std::string_view(node.path));
        node.file = it != files_.end() ? &it->second : nullptr;
        node.seen_generation = generation_;
    }
    return node;
}

bool
Sysfs::Exists(std::string_view path) const
{
    const Node& node = ResolveNode(Open(path));
    if (injector_ != nullptr && injector_->IsGone(node.path)) {
        return false;
    }
    return node.file != nullptr;
}

SysfsReadResult
Sysfs::TryRead(std::string_view path) const
{
    return TryRead(Open(path));
}

// aeo: hot-path-stop -- simulated kernel file I/O: this is the syscall
// boundary, and the string payload is the sim's transfer medium; a real
// kernel crossing is opaque to the allocation analysis anyway.
SysfsReadResult
Sysfs::TryRead(SysfsHandle handle) const
{
    last_latency_ = SimTime::Zero();
    Node& node = ResolveNode(handle);
    SysfsReadResult result;
    if (node.file == nullptr) {
        result.errc = FaultErrc::kNoEnt;
        return result;
    }
    if (injector_ != nullptr) {
        const FaultDecision decision = injector_->OnRead(node.path);
        last_latency_ = decision.latency;
        if (!decision.ok()) {
            result.errc = decision.errc;
            return result;
        }
        if (decision.stale && node.has_last_good) {
            result.value = node.last_good;
            return result;
        }
        // Nothing cached yet: fall through to a genuine read.
    }
    result.value = node.file->read();
    node.last_good = result.value;
    node.has_last_good = true;
    return result;
}

FaultErrc
Sysfs::TryWrite(std::string_view path, const std::string& value)
{
    return TryWrite(Open(path), value);
}

// aeo: hot-path-stop -- simulated kernel file I/O: the write payload and
// fault-driven clamp rewrite are the sim's transfer medium at the syscall
// boundary, mirroring TryRead above.
FaultErrc
Sysfs::TryWrite(SysfsHandle handle, const std::string& value)
{
    last_latency_ = SimTime::Zero();
    Node& node = ResolveNode(handle);
    if (node.file == nullptr) {
        return FaultErrc::kNoEnt;
    }
    std::string applied = value;
    if (injector_ != nullptr) {
        const FaultDecision decision = injector_->OnWrite(node.path);
        last_latency_ = decision.latency;
        if (!decision.ok()) {
            return decision.errc;
        }
        if (decision.silent_clamp) {
            // Silent clamp: the write is accepted but a scaled-down value
            // reaches the file — only read-back can expose the difference.
            // Non-numeric payloads (governor names) pass through unchanged.
            long long numeric = 0;
            if (ParseInt64(Trim(applied), &numeric) && numeric > 0) {
                const long long clamped = std::max(
                    1LL, static_cast<long long>(std::llround(
                             static_cast<double>(numeric) * decision.clamp_factor)));
                applied = StrFormat("%lld", clamped);
            }
        }
    }
    if (node.file->write == nullptr) {
        return FaultErrc::kPerm;
    }
    return node.file->write(applied) ? FaultErrc::kOk : FaultErrc::kInval;
}

std::string
Sysfs::ReadOrDefault(std::string_view path, const std::string& fallback) const
{
    const SysfsReadResult result = TryRead(path);
    return result.ok() ? result.value : fallback;
}

std::string
Sysfs::Read(std::string_view path) const
{
    return Read(Open(path));
}

std::string
Sysfs::Read(SysfsHandle handle) const
{
    const SysfsReadResult result = TryRead(handle);
    if (!result.ok()) {
        Fatal("sysfs read of '%s' failed: %s", PathOf(handle).c_str(),
              FaultErrcName(result.errc));
    }
    return result.value;
}

bool
Sysfs::Write(std::string_view path, const std::string& value)
{
    return Write(Open(path), value);
}

bool
Sysfs::Write(SysfsHandle handle, const std::string& value)
{
    const FaultErrc errc = TryWrite(handle, value);
    switch (errc) {
    case FaultErrc::kOk:
        return true;
    case FaultErrc::kInval:
        return false;  // EINVAL stays a value, matching the documented API.
    default:
        Fatal("sysfs write to '%s' failed: %s", PathOf(handle).c_str(),
              FaultErrcName(errc));
    }
}

std::vector<std::string>
Sysfs::List(std::string_view prefix) const
{
    std::vector<std::string> out;
    for (const auto& [path, file] : files_) {
        if (StartsWith(path, prefix)) {
            out.push_back(path);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace aeo
