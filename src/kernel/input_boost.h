/**
 * @file
 * Touch-event frequency boost.
 *
 * Android kernels raise the CPU frequency floor when the screen is touched
 * so the first frames of an interaction are fast. The paper *disables* this
 * ("a kernel compilation feature which causes CPU frequency boost on a
 * screen touch event is also disabled to help record reliable power data",
 * §IV-A). Implemented so its distortion of power measurements can be
 * demonstrated, and disabled by default like the paper's build.
 */
#ifndef AEO_KERNEL_INPUT_BOOST_H_
#define AEO_KERNEL_INPUT_BOOST_H_

#include <cstdint>

#include "kernel/cpufreq.h"
#include "sim/simulator.h"

namespace aeo {

/** Tunables of the input boost. */
struct InputBoostParams {
    /** Frequency floor applied on a touch (Nexus 6 boosts to ~1.5 GHz). */
    Gigahertz boost_freq{1.4976};
    /** How long the floor holds after the last touch. */
    SimTime duration = SimTime::Millis(1500);
};

/** Raises the cpufreq minimum for a window after each touch event. */
class InputBoost {
  public:
    /**
     * @param sim    Simulation executive; must outlive this.
     * @param policy The boosted policy; must outlive this.
     */
    InputBoost(Simulator* sim, CpufreqPolicy* policy, InputBoostParams params = {});

    /** A touch arrived: apply (or extend) the boost floor. */
    void OnTouch();

    /** Number of touches processed. */
    uint64_t touch_count() const { return touch_count_; }

    /** True while the floor is raised. */
    bool boosted() const { return boosted_; }

  private:
    void Expire();

    Simulator* sim_;
    CpufreqPolicy* policy_;
    InputBoostParams params_;
    int saved_min_level_ = 0;
    SimTime boost_until_;
    bool boosted_ = false;
    uint64_t touch_count_ = 0;
};

}  // namespace aeo

#endif  // AEO_KERNEL_INPUT_BOOST_H_
