/**
 * @file
 * The GPU frequency policy (kgsl devfreq on Android): pluggable governors
 * over the GpuDomain, with the msm-adreno-tz busy-threshold governor as the
 * Android default and a userspace governor for the extended controller
 * (§VII: "include GPU frequencies ... into the control system framework").
 */
#ifndef AEO_KERNEL_GPUFREQ_H_
#define AEO_KERNEL_GPUFREQ_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "kernel/sysfs.h"
#include "sim/periodic_task.h"
#include "sim/simulator.h"
#include "soc/gpu_domain.h"

namespace aeo {

/** Accumulates GPU busy time for governor sampling. */
class GpuBusyMeter {
  public:
    /** Adds @p dt during which the GPU was @p busy (fraction in [0, 1]). */
    void Advance(double busy, SimTime dt);

    /** Integral of the busy fraction, seconds. */
    double busy_seconds() const { return busy_seconds_; }

    /** Total wall time observed. */
    SimTime elapsed() const { return elapsed_; }

  private:
    double busy_seconds_ = 0.0;
    SimTime elapsed_;
};

class GpuFreqPolicy;

/** Base class for GPU governors. */
class GpuGovernor {
  public:
    virtual ~GpuGovernor() = default;
    virtual std::string name() const = 0;
    virtual void Start() = 0;
    virtual void Stop() = 0;
    /** userspace set_freq hook (MHz); only userspace accepts. */
    virtual bool SetClock(double) { return false; }
};

/** Factory producing a governor bound to a policy. */
using GpuGovernorFactory = std::function<std::unique_ptr<GpuGovernor>(GpuFreqPolicy*)>;

/** The GPU frequency domain policy. */
class GpuFreqPolicy {
  public:
    GpuFreqPolicy(Simulator* sim, GpuDomain* gpu, const GpuBusyMeter* meter,
                  Sysfs* sysfs, std::string sysfs_root);
    ~GpuFreqPolicy();

    GpuFreqPolicy(const GpuFreqPolicy&) = delete;
    GpuFreqPolicy& operator=(const GpuFreqPolicy&) = delete;

    /** Registers a governor; panics on duplicates. */
    void RegisterGovernor(const std::string& name, GpuGovernorFactory factory);

    /** Switches governors; false for unknown names. */
    bool SetGovernor(const std::string& name);

    /** Active governor name ("none" before the first SetGovernor). */
    std::string governor_name() const;

    // --- Interface used by governors -------------------------------------
    void RequestLevel(int level);
    int current_level() const { return gpu_->level(); }
    GpuDomain& gpu() { return *gpu_; }
    const GpuBusyMeter* busy_meter() const { return meter_; }
    Simulator* sim() const { return sim_; }

    /** Meter sync hook (the device integrates lazily). */
    void SetSyncHook(std::function<void()> hook) { sync_hook_ = std::move(hook); }
    void
    SyncMeters() const
    {
        if (sync_hook_) {
            sync_hook_();
        }
    }

  private:
    void RegisterSysfsFiles();

    Simulator* sim_;
    GpuDomain* gpu_;
    const GpuBusyMeter* meter_;
    Sysfs* sysfs_;
    std::string sysfs_root_;
    std::map<std::string, GpuGovernorFactory> factories_;
    std::unique_ptr<GpuGovernor> governor_;
    std::function<void()> sync_hook_;
};

/** Tunables of the msm-adreno-tz-like busy-threshold governor. */
struct AdrenoTzParams {
    SimTime sampling_period = SimTime::Millis(50);
    /** Busy fraction above which the clock steps up. */
    double up_threshold = 0.70;
    /** Busy fraction below which the clock steps down. */
    double down_threshold = 0.30;
};

/** The Android default GPU governor: steps one level on busy thresholds. */
class AdrenoTzGovernor : public GpuGovernor {
  public:
    AdrenoTzGovernor(GpuFreqPolicy* policy, AdrenoTzParams params = {});

    std::string name() const override { return "msm-adreno-tz"; }
    void Start() override;
    void Stop() override;

  private:
    void Sample();

    GpuFreqPolicy* policy_;
    AdrenoTzParams params_;
    PeriodicTask timer_;
    double last_busy_seconds_ = 0.0;
    SimTime last_elapsed_;
};

/** Passive governor actuated from userspace (the extended controller). */
class GpuUserspaceGovernor : public GpuGovernor {
  public:
    explicit GpuUserspaceGovernor(GpuFreqPolicy* policy) : policy_(policy) {}

    std::string name() const override { return "userspace"; }
    void Start() override {}
    void Stop() override {}
    bool
    SetClock(double mhz) override
    {
        policy_->RequestLevel(policy_->gpu().ClosestLevel(mhz));
        return true;
    }

  private:
    GpuFreqPolicy* policy_;
};

/** Pins the maximum clock. */
class GpuPerformanceGovernor : public GpuGovernor {
  public:
    explicit GpuPerformanceGovernor(GpuFreqPolicy* policy) : policy_(policy) {}
    std::string name() const override { return "performance"; }
    void Start() override { policy_->RequestLevel(policy_->gpu().max_level()); }
    void Stop() override {}

  private:
    GpuFreqPolicy* policy_;
};

GpuGovernorFactory MakeAdrenoTzFactory(AdrenoTzParams params = {});
GpuGovernorFactory MakeGpuUserspaceFactory();
GpuGovernorFactory MakeGpuPerformanceFactory();

}  // namespace aeo

#endif  // AEO_KERNEL_GPUFREQ_H_
