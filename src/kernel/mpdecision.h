/**
 * @file
 * The mpdecision hotplug policy.
 *
 * Qualcomm's userspace daemon onlines/offlines cores based on load. The
 * paper *disables* it during experiments because hotplugging "can lead to
 * inaccurate measurements" (§IV-A) — offlined cores change both the power
 * baseline and the capacity mid-measurement. It is implemented here so the
 * repository can demonstrate exactly that distortion
 * (bench/ablation_mpdecision) and so device studies can opt back in.
 */
#ifndef AEO_KERNEL_MPDECISION_H_
#define AEO_KERNEL_MPDECISION_H_

#include <optional>
#include <vector>

#include "kernel/meters.h"
#include "sim/periodic_task.h"
#include "sim/simulator.h"
#include "soc/cpu_cluster.h"

namespace aeo {

/** Tunables of the hotplug policy. */
struct MpdecisionParams {
    /** Load sampling period. */
    SimTime sampling_period = SimTime::Millis(100);
    /** Per-online-core busy fraction above which a core is onlined. */
    double online_threshold = 0.80;
    /** Per-online-core busy fraction below which a core is offlined. */
    double offline_threshold = 0.30;
    /** Cores that always stay online. */
    int min_online = 1;
};

/** Load-threshold CPU hotplug, one core per decision. */
class Mpdecision {
  public:
    /**
     * @param sim        Simulation executive; must outlive this.
     * @param cluster    The managed cluster; must outlive this.
     * @param load_meter Busy-time accounting to sample.
     * @param params     Thresholds.
     */
    Mpdecision(Simulator* sim, CpuCluster* cluster, const CpuLoadMeter* load_meter,
               MpdecisionParams params = {});

    /**
     * Registers a further hotplug domain (big.LITTLE: one per cluster).
     * Each domain gets its own load window and independent decisions under
     * the shared thresholds, the way the userspace daemon treats each
     * policy. Must be called before Start().
     */
    void AddCluster(CpuCluster* cluster, const CpuLoadMeter* load_meter);

    /** Starts making hotplug decisions. */
    void Start();

    /** Stops; online cores are restored to the full count (the paper's
     * experimental configuration). */
    void Stop();

    /** True while active. */
    bool running() const { return timer_.running(); }

    /** Number of hotplug transitions performed. */
    uint64_t transition_count() const { return transition_count_; }

    /** Registers a meter-sync hook (the device integrates lazily). */
    void SetSyncHook(std::function<void()> hook) { sync_hook_ = std::move(hook); }

  private:
    /** One independently hotplugged cluster. */
    struct Domain {
        CpuCluster* cluster = nullptr;
        const CpuLoadMeter* load_meter = nullptr;
        std::optional<CpuLoadWindow> window;
    };

    void Sample();
    void SampleDomain(Domain* domain);

    Simulator* sim_;
    MpdecisionParams params_;
    PeriodicTask timer_;
    std::vector<Domain> domains_;
    std::function<void()> sync_hook_;
    uint64_t transition_count_ = 0;
};

}  // namespace aeo

#endif  // AEO_KERNEL_MPDECISION_H_
