/**
 * @file
 * The powersave cpufreq governor: pins the cluster at the lowest allowed
 * frequency (§II-A).
 */
#ifndef AEO_KERNEL_GOVERNORS_CPUFREQ_POWERSAVE_H_
#define AEO_KERNEL_GOVERNORS_CPUFREQ_POWERSAVE_H_

#include <memory>
#include <string>

#include "kernel/cpufreq.h"

namespace aeo {

/** Pins the minimum frequency. */
class CpufreqPowersaveGovernor : public CpufreqGovernor {
  public:
    explicit CpufreqPowersaveGovernor(CpufreqPolicy* policy);

    std::string name() const override { return "powersave"; }
    void Start() override;
    void Stop() override {}

  private:
    CpufreqPolicy* policy_;
};

/** Factory for registration with a policy. */
CpufreqGovernorFactory MakeCpufreqPowersaveFactory();

}  // namespace aeo

#endif  // AEO_KERNEL_GOVERNORS_CPUFREQ_POWERSAVE_H_
