#include "kernel/governors/cpufreq_lulzactive.h"

#include <algorithm>

#include "common/logging.h"

namespace aeo {

CpufreqLulzactiveGovernor::CpufreqLulzactiveGovernor(CpufreqPolicy* policy,
                                                     LulzactiveParams params)
    : policy_(policy),
      params_(params),
      timer_(policy->sim(), [this] { Sample(); })
{
    AEO_ASSERT(policy_ != nullptr, "lulzactive governor needs a policy");
    AEO_ASSERT(params_.inc_cpu_load > 0.0 && params_.inc_cpu_load <= 1.0,
               "inc_cpu_load %f out of (0, 1]", params_.inc_cpu_load);
    AEO_ASSERT(params_.pump_up_step >= 1 && params_.pump_down_step >= 1,
               "pump steps must be at least one level");
}

void
CpufreqLulzactiveGovernor::Start()
{
    window_.emplace(policy_->load_meter());
    last_change_time_ = policy_->sim()->Now();
    timer_.Start(params_.timer_rate);
}

void
CpufreqLulzactiveGovernor::Stop()
{
    timer_.Stop();
    window_.reset();
}

void
CpufreqLulzactiveGovernor::Sample()
{
    const SimTime now = policy_->sim()->Now();
    policy_->SyncMeters();
    const double load = window_->SampleCoreLoad();
    const int cur_level = policy_->current_level();

    if (load >= params_.inc_cpu_load) {
        if (now - last_change_time_ < params_.up_sample_time) {
            return;
        }
        const int target =
            std::min(cur_level + params_.pump_up_step, policy_->max_level_limit());
        if (target > cur_level) {
            policy_->RequestLevel(target);
            last_change_time_ = now;
        }
    } else {
        if (now - last_change_time_ < params_.down_sample_time) {
            return;
        }
        const int target =
            std::max(cur_level - params_.pump_down_step, policy_->min_level_limit());
        if (target < cur_level) {
            policy_->RequestLevel(target);
            last_change_time_ = now;
        }
    }
}

CpufreqGovernorFactory
MakeCpufreqLulzactiveFactory(LulzactiveParams params)
{
    return [params](CpufreqPolicy* policy) {
        return std::make_unique<CpufreqLulzactiveGovernor>(policy, params);
    };
}

}  // namespace aeo
