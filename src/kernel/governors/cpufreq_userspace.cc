#include "kernel/governors/cpufreq_userspace.h"

#include "common/logging.h"

namespace aeo {

CpufreqUserspaceGovernor::CpufreqUserspaceGovernor(CpufreqPolicy* policy)
    : policy_(policy)
{
    AEO_ASSERT(policy_ != nullptr, "userspace governor needs a policy");
}

void
CpufreqUserspaceGovernor::Start()
{
    // Keeps the current frequency until told otherwise, like Linux.
}

bool
CpufreqUserspaceGovernor::SetSpeed(Gigahertz freq)
{
    policy_->RequestLevel(policy_->table().ClosestLevel(freq));
    return true;
}

CpufreqGovernorFactory
MakeCpufreqUserspaceFactory()
{
    return [](CpufreqPolicy* policy) {
        return std::make_unique<CpufreqUserspaceGovernor>(policy);
    };
}

}  // namespace aeo
