/**
 * @file
 * The ondemand cpufreq governor (Pallipadi & Starikovskiy, OLS 2006; §II-A
 * of the paper): samples CPU load at a fixed rate; above the up-threshold it
 * jumps straight to the maximum frequency, below it the frequency is lowered
 * gradually to the lowest level that would keep load under the threshold.
 */
#ifndef AEO_KERNEL_GOVERNORS_CPUFREQ_ONDEMAND_H_
#define AEO_KERNEL_GOVERNORS_CPUFREQ_ONDEMAND_H_

#include <memory>
#include <optional>
#include <string>

#include "kernel/cpufreq.h"
#include "sim/periodic_task.h"

namespace aeo {

/** Tunables of the ondemand governor. */
struct OndemandParams {
    /** Load sampling period. */
    SimTime sampling_period = SimTime::Millis(50);
    /** Load above which the governor jumps to the maximum frequency. */
    double up_threshold = 0.80;
    /**
     * Hysteresis margin: when scaling down, target a frequency that keeps
     * projected load this far below the up-threshold.
     */
    double down_differential = 0.10;
};

/** Load-threshold governor that ramps to max and decays proportionally. */
class CpufreqOndemandGovernor : public CpufreqGovernor {
  public:
    CpufreqOndemandGovernor(CpufreqPolicy* policy, OndemandParams params = {});

    std::string name() const override { return "ondemand"; }
    void Start() override;
    void Stop() override;

  private:
    void Sample();

    CpufreqPolicy* policy_;
    OndemandParams params_;
    PeriodicTask timer_;
    std::optional<CpuLoadWindow> window_;
};

/** Factory with default parameters. */
CpufreqGovernorFactory MakeCpufreqOndemandFactory(OndemandParams params = {});

}  // namespace aeo

#endif  // AEO_KERNEL_GOVERNORS_CPUFREQ_ONDEMAND_H_
