#include "kernel/governors/cpufreq_powersave.h"

#include "common/logging.h"

namespace aeo {

CpufreqPowersaveGovernor::CpufreqPowersaveGovernor(CpufreqPolicy* policy)
    : policy_(policy)
{
    AEO_ASSERT(policy_ != nullptr, "powersave governor needs a policy");
}

void
CpufreqPowersaveGovernor::Start()
{
    policy_->RequestLevel(policy_->min_level_limit());
}

CpufreqGovernorFactory
MakeCpufreqPowersaveFactory()
{
    return [](CpufreqPolicy* policy) {
        return std::make_unique<CpufreqPowersaveGovernor>(policy);
    };
}

}  // namespace aeo
