#include "kernel/governors/devfreq_simple.h"

#include "common/logging.h"

namespace aeo {

DevfreqUserspaceGovernor::DevfreqUserspaceGovernor(DevfreqPolicy* policy)
    : policy_(policy)
{
    AEO_ASSERT(policy_ != nullptr, "userspace devfreq governor needs a policy");
}

bool
DevfreqUserspaceGovernor::SetBandwidth(MegabytesPerSecond bw)
{
    policy_->RequestLevel(policy_->table().ClosestLevel(bw));
    return true;
}

DevfreqPerformanceGovernor::DevfreqPerformanceGovernor(DevfreqPolicy* policy)
    : policy_(policy)
{
    AEO_ASSERT(policy_ != nullptr, "performance devfreq governor needs a policy");
}

void
DevfreqPerformanceGovernor::Start()
{
    policy_->RequestLevel(policy_->max_level_limit());
}

DevfreqPowersaveGovernor::DevfreqPowersaveGovernor(DevfreqPolicy* policy)
    : policy_(policy)
{
    AEO_ASSERT(policy_ != nullptr, "powersave devfreq governor needs a policy");
}

void
DevfreqPowersaveGovernor::Start()
{
    policy_->RequestLevel(policy_->min_level_limit());
}

DevfreqGovernorFactory
MakeDevfreqUserspaceFactory()
{
    return [](DevfreqPolicy* policy) {
        return std::make_unique<DevfreqUserspaceGovernor>(policy);
    };
}

DevfreqGovernorFactory
MakeDevfreqPerformanceFactory()
{
    return [](DevfreqPolicy* policy) {
        return std::make_unique<DevfreqPerformanceGovernor>(policy);
    };
}

DevfreqGovernorFactory
MakeDevfreqPowersaveFactory()
{
    return [](DevfreqPolicy* policy) {
        return std::make_unique<DevfreqPowersaveGovernor>(policy);
    };
}

}  // namespace aeo
