/**
 * @file
 * The conservative cpufreq governor — the classic Linux alternative to
 * ondemand: instead of jumping to the maximum on load, it steps the
 * frequency up and down gradually, one step per sampling period.
 */
#ifndef AEO_KERNEL_GOVERNORS_CPUFREQ_CONSERVATIVE_H_
#define AEO_KERNEL_GOVERNORS_CPUFREQ_CONSERVATIVE_H_

#include <memory>
#include <optional>
#include <string>

#include "kernel/cpufreq.h"
#include "sim/periodic_task.h"

namespace aeo {

/** Tunables of the conservative governor. */
struct ConservativeParams {
    /** Load sampling period. */
    SimTime sampling_period = SimTime::Millis(50);
    /** Load above which the frequency steps up. */
    double up_threshold = 0.80;
    /** Load below which the frequency steps down. */
    double down_threshold = 0.20;
    /** Levels moved per decision. */
    int freq_step = 1;
};

/** Gradual load-threshold governor. */
class CpufreqConservativeGovernor : public CpufreqGovernor {
  public:
    CpufreqConservativeGovernor(CpufreqPolicy* policy, ConservativeParams params = {});

    std::string name() const override { return "conservative"; }
    void Start() override;
    void Stop() override;

  private:
    void Sample();

    CpufreqPolicy* policy_;
    ConservativeParams params_;
    PeriodicTask timer_;
    std::optional<CpuLoadWindow> window_;
};

/** Factory with default parameters. */
CpufreqGovernorFactory MakeCpufreqConservativeFactory(ConservativeParams params = {});

}  // namespace aeo

#endif  // AEO_KERNEL_GOVERNORS_CPUFREQ_CONSERVATIVE_H_
