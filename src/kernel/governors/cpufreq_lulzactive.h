/**
 * @file
 * The lulzactive cpufreq governor — the community "smartass lineage"
 * governor popular on Exynos/Tegra custom kernels, included as a further
 * baseline for the governor comparisons.
 *
 * Behavioural summary of the version 2 implementation this model follows:
 *  - load is sampled every timer_rate;
 *  - when load ≥ inc_cpu_load the frequency climbs by pump_up_step table
 *    levels — a fixed ramp stage instead of interactive's proportional
 *    target — but no sooner than up_sample_time after the last change;
 *  - otherwise it descends by pump_down_step levels, gated by the longer
 *    down_sample_time dwell;
 *  - there is no hispeed jump: bursts ramp through the stages, which is
 *    exactly why lulzactive trades some responsiveness for fewer spurious
 *    residencies at the top of the table.
 */
#ifndef AEO_KERNEL_GOVERNORS_CPUFREQ_LULZACTIVE_H_
#define AEO_KERNEL_GOVERNORS_CPUFREQ_LULZACTIVE_H_

#include <memory>
#include <optional>
#include <string>

#include "kernel/cpufreq.h"
#include "sim/periodic_task.h"

namespace aeo {

/** Tunables of the lulzactive governor (v2 defaults). */
struct LulzactiveParams {
    /** Load sampling period. */
    SimTime timer_rate = SimTime::Millis(10);
    /** Load at or above which the governor ramps up. */
    double inc_cpu_load = 0.70;
    /** Table levels climbed per up decision (the "pump" ramp stage). */
    int pump_up_step = 2;
    /** Table levels descended per down decision. */
    int pump_down_step = 1;
    /** Minimum dwell after any change before ramping up again. */
    SimTime up_sample_time = SimTime::Millis(20);
    /** Minimum dwell after any change before stepping down. */
    SimTime down_sample_time = SimTime::Millis(40);
};

/** Fixed-ramp load-threshold governor. */
class CpufreqLulzactiveGovernor : public CpufreqGovernor {
  public:
    CpufreqLulzactiveGovernor(CpufreqPolicy* policy, LulzactiveParams params = {});

    std::string name() const override { return "lulzactive"; }
    void Start() override;
    void Stop() override;

  private:
    void Sample();

    CpufreqPolicy* policy_;
    LulzactiveParams params_;
    PeriodicTask timer_;
    std::optional<CpuLoadWindow> window_;
    /** Time of the last accepted frequency change (dwell gates). */
    SimTime last_change_time_;
};

/** Factory with default parameters. */
CpufreqGovernorFactory MakeCpufreqLulzactiveFactory(LulzactiveParams params = {});

}  // namespace aeo

#endif  // AEO_KERNEL_GOVERNORS_CPUFREQ_LULZACTIVE_H_
