#include "kernel/governors/cpufreq_conservative.h"

#include "common/logging.h"

namespace aeo {

CpufreqConservativeGovernor::CpufreqConservativeGovernor(CpufreqPolicy* policy,
                                                         ConservativeParams params)
    : policy_(policy),
      params_(params),
      timer_(policy->sim(), [this] { Sample(); })
{
    AEO_ASSERT(policy_ != nullptr, "conservative governor needs a policy");
    AEO_ASSERT(params_.down_threshold < params_.up_threshold,
               "thresholds out of order");
    AEO_ASSERT(params_.freq_step >= 1, "frequency step must be positive");
}

void
CpufreqConservativeGovernor::Start()
{
    window_.emplace(policy_->load_meter());
    timer_.Start(params_.sampling_period);
}

void
CpufreqConservativeGovernor::Stop()
{
    timer_.Stop();
    window_.reset();
}

void
CpufreqConservativeGovernor::Sample()
{
    policy_->SyncMeters();
    const double load = window_->SampleCoreLoad();
    const int level = policy_->current_level();
    if (load > params_.up_threshold) {
        policy_->RequestLevel(level + params_.freq_step);
    } else if (load < params_.down_threshold) {
        policy_->RequestLevel(level - params_.freq_step);
    }
}

CpufreqGovernorFactory
MakeCpufreqConservativeFactory(ConservativeParams params)
{
    return [params](CpufreqPolicy* policy) {
        return std::make_unique<CpufreqConservativeGovernor>(policy, params);
    };
}

}  // namespace aeo
