#include "kernel/governors/cpufreq_interactive.h"

#include <algorithm>

#include "common/logging.h"

namespace aeo {

CpufreqInteractiveGovernor::CpufreqInteractiveGovernor(CpufreqPolicy* policy,
                                                       InteractiveParams params)
    : policy_(policy),
      params_(params),
      timer_(policy->sim(), [this] { Sample(); })
{
    AEO_ASSERT(policy_ != nullptr, "interactive governor needs a policy");
    AEO_ASSERT(params_.go_hispeed_load > 0.0 && params_.go_hispeed_load <= 1.0,
               "go_hispeed_load %f out of (0, 1]", params_.go_hispeed_load);
    AEO_ASSERT(params_.target_load > 0.0 && params_.target_load <= 1.0,
               "target_load %f out of (0, 1]", params_.target_load);
}

void
CpufreqInteractiveGovernor::Start()
{
    window_.emplace(policy_->load_meter());
    last_raise_time_ = policy_->sim()->Now();
    hispeed_since_ = policy_->sim()->Now();
    at_or_above_hispeed_ = false;
    timer_.Start(params_.timer_rate);
}

void
CpufreqInteractiveGovernor::Stop()
{
    timer_.Stop();
    window_.reset();
}

void
CpufreqInteractiveGovernor::Sample()
{
    const SimTime now = policy_->sim()->Now();
    policy_->SyncMeters();
    const double load = window_->SampleCoreLoad();
    const FrequencyTable& table = policy_->table();
    const int cur_level = policy_->current_level();
    const double f_cur = table.FrequencyAt(cur_level).value();
    const int hispeed_level =
        std::min(table.LevelAtOrAbove(params_.hispeed_freq), policy_->max_level_limit());

    int target_level;
    if (load >= params_.go_hispeed_load) {
        // Burst response: jump at least to hispeed.
        if (cur_level < hispeed_level) {
            target_level = hispeed_level;
        } else {
            // Already at/above hispeed; may climb further only after the
            // above-hispeed delay has elapsed.
            if (at_or_above_hispeed_ &&
                now - hispeed_since_ >= params_.above_hispeed_delay) {
                const double f_needed = f_cur * load / params_.target_load;
                target_level = std::max(
                    cur_level, table.LevelAtOrAbove(Gigahertz(f_needed)));
            } else {
                target_level = cur_level;
            }
        }
    } else {
        // Steer toward target_load.
        const double f_needed = f_cur * load / params_.target_load;
        target_level = table.LevelAtOrAbove(Gigahertz(f_needed));
    }

    if (target_level > cur_level) {
        policy_->RequestLevel(target_level);
        last_raise_time_ = now;
    } else if (target_level < cur_level) {
        // Only drop after the floor has aged out.
        if (now - last_raise_time_ >= params_.min_sample_time) {
            policy_->RequestLevel(target_level);
        }
    }

    const bool now_hispeed = policy_->current_level() >= hispeed_level;
    if (now_hispeed && !at_or_above_hispeed_) {
        hispeed_since_ = now;
    }
    at_or_above_hispeed_ = now_hispeed;
}

CpufreqGovernorFactory
MakeCpufreqInteractiveFactory(InteractiveParams params)
{
    return [params](CpufreqPolicy* policy) {
        return std::make_unique<CpufreqInteractiveGovernor>(policy, params);
    };
}

}  // namespace aeo
