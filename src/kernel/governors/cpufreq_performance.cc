#include "kernel/governors/cpufreq_performance.h"

#include "common/logging.h"

namespace aeo {

CpufreqPerformanceGovernor::CpufreqPerformanceGovernor(CpufreqPolicy* policy)
    : policy_(policy)
{
    AEO_ASSERT(policy_ != nullptr, "performance governor needs a policy");
}

void
CpufreqPerformanceGovernor::Start()
{
    policy_->RequestLevel(policy_->max_level_limit());
}

CpufreqGovernorFactory
MakeCpufreqPerformanceFactory()
{
    return [](CpufreqPolicy* policy) {
        return std::make_unique<CpufreqPerformanceGovernor>(policy);
    };
}

}  // namespace aeo
