/**
 * @file
 * The userspace cpufreq governor: takes no decisions of its own and lets a
 * root process set the frequency through scaling_setspeed (§II-A). This is
 * the hook through which the paper's controller actuates CPU frequency.
 */
#ifndef AEO_KERNEL_GOVERNORS_CPUFREQ_USERSPACE_H_
#define AEO_KERNEL_GOVERNORS_CPUFREQ_USERSPACE_H_

#include <memory>
#include <string>

#include "kernel/cpufreq.h"

namespace aeo {

/** Passive governor actuated from userspace. */
class CpufreqUserspaceGovernor : public CpufreqGovernor {
  public:
    explicit CpufreqUserspaceGovernor(CpufreqPolicy* policy);

    std::string name() const override { return "userspace"; }
    void Start() override;
    void Stop() override {}
    bool SetSpeed(Gigahertz freq) override;

  private:
    CpufreqPolicy* policy_;
};

/** Factory for registration with a policy. */
CpufreqGovernorFactory MakeCpufreqUserspaceFactory();

}  // namespace aeo

#endif  // AEO_KERNEL_GOVERNORS_CPUFREQ_USERSPACE_H_
