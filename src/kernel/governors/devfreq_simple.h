/**
 * @file
 * The simple devfreq governors: userspace, performance and powersave —
 * the devfreq counterparts of their cpufreq namesakes (§II-A).
 */
#ifndef AEO_KERNEL_GOVERNORS_DEVFREQ_SIMPLE_H_
#define AEO_KERNEL_GOVERNORS_DEVFREQ_SIMPLE_H_

#include <memory>
#include <string>

#include "kernel/devfreq.h"

namespace aeo {

/** Passive governor actuated from userspace via userspace/set_freq. */
class DevfreqUserspaceGovernor : public DevfreqGovernor {
  public:
    explicit DevfreqUserspaceGovernor(DevfreqPolicy* policy);

    std::string name() const override { return "userspace"; }
    void Start() override {}
    void Stop() override {}
    bool SetBandwidth(MegabytesPerSecond bw) override;

  private:
    DevfreqPolicy* policy_;
};

/** Pins the maximum bandwidth. */
class DevfreqPerformanceGovernor : public DevfreqGovernor {
  public:
    explicit DevfreqPerformanceGovernor(DevfreqPolicy* policy);

    std::string name() const override { return "performance"; }
    void Start() override;
    void Stop() override {}

  private:
    DevfreqPolicy* policy_;
};

/** Pins the minimum bandwidth. */
class DevfreqPowersaveGovernor : public DevfreqGovernor {
  public:
    explicit DevfreqPowersaveGovernor(DevfreqPolicy* policy);

    std::string name() const override { return "powersave"; }
    void Start() override;
    void Stop() override {}

  private:
    DevfreqPolicy* policy_;
};

/** Factories for registration. */
DevfreqGovernorFactory MakeDevfreqUserspaceFactory();
DevfreqGovernorFactory MakeDevfreqPerformanceFactory();
DevfreqGovernorFactory MakeDevfreqPowersaveFactory();

}  // namespace aeo

#endif  // AEO_KERNEL_GOVERNORS_DEVFREQ_SIMPLE_H_
