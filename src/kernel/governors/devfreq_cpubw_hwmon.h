/**
 * @file
 * The cpubw_hwmon devfreq governor — the Android default for the CPU-to-
 * memory bus the paper compares against (§II-A, §V-A, Fig. 5).
 *
 * The real governor watches a bus hardware monitor: when measured traffic
 * approaches the provisioned bandwidth it immediately raises the bandwidth
 * (with headroom); when traffic falls it lowers it slowly, using an
 * exponential back-off so that bursty clients do not see a slow bus. The
 * paper observes that this asymmetry keeps bandwidth "higher than necessary
 * for over 60 % of the application runtime".
 */
#ifndef AEO_KERNEL_GOVERNORS_DEVFREQ_CPUBW_HWMON_H_
#define AEO_KERNEL_GOVERNORS_DEVFREQ_CPUBW_HWMON_H_

#include <memory>
#include <optional>
#include <string>

#include "kernel/devfreq.h"
#include "sim/periodic_task.h"

namespace aeo {

/** Tunables of the cpubw_hwmon governor. */
struct CpubwHwmonParams {
    /** Traffic sampling period. */
    SimTime sampling_period = SimTime::Millis(50);
    /**
     * Target utilization of provisioned bandwidth (the driver's io_percent
     * knob, ~34 % on msm8084): the governor provisions measured/target and
     * raises as soon as utilization exceeds it.
     */
    double target_utilization = 0.35;
    /**
     * Consecutive low samples required before the first down-step; the
     * requirement doubles after every down-step (exponential back-off) and
     * resets on any up-step.
     */
    int initial_down_count = 2;
    /** Ceiling on the back-off requirement. */
    int max_down_count = 32;
};

/** Traffic-monitoring governor with fast-up / exponential-back-off-down. */
class DevfreqCpubwHwmonGovernor : public DevfreqGovernor {
  public:
    DevfreqCpubwHwmonGovernor(DevfreqPolicy* policy, CpubwHwmonParams params = {});

    std::string name() const override { return "cpubw_hwmon"; }
    void Start() override;
    void Stop() override;

  private:
    void Sample();

    DevfreqPolicy* policy_;
    CpubwHwmonParams params_;
    PeriodicTask timer_;
    std::optional<BusTrafficWindow> window_;
    int low_samples_ = 0;
    int required_low_samples_ = 0;
};

/** Factory with default parameters. */
DevfreqGovernorFactory MakeDevfreqCpubwHwmonFactory(CpubwHwmonParams params = {});

}  // namespace aeo

#endif  // AEO_KERNEL_GOVERNORS_DEVFREQ_CPUBW_HWMON_H_
