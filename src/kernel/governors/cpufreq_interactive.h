/**
 * @file
 * The interactive cpufreq governor — the Android default the paper measures
 * against (§II-A, Figs. 1 & 4).
 *
 * Behavioural summary of the AOSP implementation this model follows:
 *  - load is sampled every timer_rate (20 ms);
 *  - when load ≥ go_hispeed_load the frequency jumps at least to
 *    hispeed_freq (1.4976 GHz = level 10 on the Nexus 6 — which is exactly
 *    why the paper's Fig. 4 shows 12.7–27.9 % residency at level 10);
 *  - further increases above hispeed_freq are held off for
 *    above_hispeed_delay;
 *  - otherwise the target is chosen so projected load ≈ target_load;
 *  - a frequency raise is "sticky" for min_sample_time before the governor
 *    may scale back down — responsiveness first, power second.
 */
#ifndef AEO_KERNEL_GOVERNORS_CPUFREQ_INTERACTIVE_H_
#define AEO_KERNEL_GOVERNORS_CPUFREQ_INTERACTIVE_H_

#include <memory>
#include <optional>
#include <string>

#include "kernel/cpufreq.h"
#include "sim/periodic_task.h"

namespace aeo {

/** Tunables of the interactive governor (AOSP defaults, Nexus 6 values). */
struct InteractiveParams {
    /** Load sampling period. */
    SimTime timer_rate = SimTime::Millis(20);
    /** Load at which the governor jumps to hispeed_freq. */
    double go_hispeed_load = 0.85;
    /** The intermediate "hispeed" frequency (Nexus 6: 1.4976 GHz). */
    Gigahertz hispeed_freq{1.4976};
    /** Wait before climbing above hispeed_freq. */
    SimTime above_hispeed_delay = SimTime::Millis(60);
    /** Minimum time at a raised frequency before scaling back down. */
    SimTime min_sample_time = SimTime::Millis(80);
    /** Load the governor steers toward when picking a target frequency. */
    double target_load = 0.90;
};

/** The Android-default responsive load-tracking governor. */
class CpufreqInteractiveGovernor : public CpufreqGovernor {
  public:
    CpufreqInteractiveGovernor(CpufreqPolicy* policy, InteractiveParams params = {});

    std::string name() const override { return "interactive"; }
    void Start() override;
    void Stop() override;

  private:
    void Sample();

    CpufreqPolicy* policy_;
    InteractiveParams params_;
    PeriodicTask timer_;
    std::optional<CpuLoadWindow> window_;
    /** Time of the last frequency raise (for min_sample_time stickiness). */
    SimTime last_raise_time_;
    /** Time the frequency first reached hispeed (for above_hispeed_delay). */
    SimTime hispeed_since_;
    bool at_or_above_hispeed_ = false;
};

/** Factory with default parameters. */
CpufreqGovernorFactory MakeCpufreqInteractiveFactory(InteractiveParams params = {});

}  // namespace aeo

#endif  // AEO_KERNEL_GOVERNORS_CPUFREQ_INTERACTIVE_H_
