/**
 * @file
 * The performance cpufreq governor: pins the cluster at the highest allowed
 * frequency (§II-A).
 */
#ifndef AEO_KERNEL_GOVERNORS_CPUFREQ_PERFORMANCE_H_
#define AEO_KERNEL_GOVERNORS_CPUFREQ_PERFORMANCE_H_

#include <memory>
#include <string>

#include "kernel/cpufreq.h"

namespace aeo {

/** Pins the maximum frequency. */
class CpufreqPerformanceGovernor : public CpufreqGovernor {
  public:
    explicit CpufreqPerformanceGovernor(CpufreqPolicy* policy);

    std::string name() const override { return "performance"; }
    void Start() override;
    void Stop() override {}

  private:
    CpufreqPolicy* policy_;
};

/** Factory for registration with a policy. */
CpufreqGovernorFactory MakeCpufreqPerformanceFactory();

}  // namespace aeo

#endif  // AEO_KERNEL_GOVERNORS_CPUFREQ_PERFORMANCE_H_
