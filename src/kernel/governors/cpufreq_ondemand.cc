#include "kernel/governors/cpufreq_ondemand.h"

#include "common/logging.h"

namespace aeo {

CpufreqOndemandGovernor::CpufreqOndemandGovernor(CpufreqPolicy* policy,
                                                 OndemandParams params)
    : policy_(policy),
      params_(params),
      timer_(policy->sim(), [this] { Sample(); })
{
    AEO_ASSERT(policy_ != nullptr, "ondemand governor needs a policy");
    AEO_ASSERT(params_.up_threshold > 0.0 && params_.up_threshold <= 1.0,
               "up_threshold %f out of (0, 1]", params_.up_threshold);
}

void
CpufreqOndemandGovernor::Start()
{
    window_.emplace(policy_->load_meter());
    timer_.Start(params_.sampling_period);
}

void
CpufreqOndemandGovernor::Stop()
{
    timer_.Stop();
    window_.reset();
}

void
CpufreqOndemandGovernor::Sample()
{
    policy_->SyncMeters();
    const double load = window_->SampleCoreLoad();
    if (load >= params_.up_threshold) {
        policy_->RequestLevel(policy_->max_level_limit());
        return;
    }
    // Scale down: find the lowest frequency that would keep the projected
    // load below (up_threshold - down_differential). busy GHz-equivalent is
    // load × f_cur; required f = busy / target_load.
    const double f_cur = policy_->table().FrequencyAt(policy_->current_level()).value();
    const double target_load = params_.up_threshold - params_.down_differential;
    AEO_ASSERT(target_load > 0.0, "down differential leaves no target load");
    const double f_needed = f_cur * load / target_load;
    policy_->RequestFrequencyAtOrAbove(Gigahertz(f_needed));
}

CpufreqGovernorFactory
MakeCpufreqOndemandFactory(OndemandParams params)
{
    return [params](CpufreqPolicy* policy) {
        return std::make_unique<CpufreqOndemandGovernor>(policy, params);
    };
}

}  // namespace aeo
