#include "kernel/governors/devfreq_cpubw_hwmon.h"

#include <algorithm>

#include "common/logging.h"

namespace aeo {

DevfreqCpubwHwmonGovernor::DevfreqCpubwHwmonGovernor(DevfreqPolicy* policy,
                                                     CpubwHwmonParams params)
    : policy_(policy),
      params_(params),
      timer_(policy->sim(), [this] { Sample(); })
{
    AEO_ASSERT(policy_ != nullptr, "cpubw_hwmon governor needs a policy");
    AEO_ASSERT(params_.target_utilization > 0.0 && params_.target_utilization <= 1.0,
               "target utilization %f out of (0, 1]", params_.target_utilization);
    AEO_ASSERT(params_.initial_down_count >= 1, "down count must be >= 1");
}

void
DevfreqCpubwHwmonGovernor::Start()
{
    window_.emplace(policy_->traffic_meter(), policy_->sim()->Now());
    low_samples_ = 0;
    required_low_samples_ = params_.initial_down_count;
    timer_.Start(params_.sampling_period);
}

void
DevfreqCpubwHwmonGovernor::Stop()
{
    timer_.Stop();
    window_.reset();
}

void
DevfreqCpubwHwmonGovernor::Sample()
{
    policy_->SyncMeters();
    const double measured_mbps = window_->SampleMbps(policy_->sim()->Now());
    const BandwidthTable& table = policy_->table();
    const int cur_level = policy_->current_level();
    const double provisioned = table.BandwidthAt(cur_level).value();
    // Provision so that measured traffic is target_utilization of the bus.
    const double wanted_mbps = measured_mbps / params_.target_utilization;

    if (measured_mbps > params_.target_utilization * provisioned) {
        // Fast up: provision to the io_percent target immediately.
        const int target = table.LevelAtOrAbove(MegabytesPerSecond(wanted_mbps));
        if (target > cur_level) {
            policy_->RequestLevel(target);
            low_samples_ = 0;
            required_low_samples_ = params_.initial_down_count;
            return;
        }
        low_samples_ = 0;
        return;
    }

    // Candidate for a down-step: would the next level down still satisfy
    // the io_percent target?
    if (cur_level > policy_->min_level_limit()) {
        const double lower = table.BandwidthAt(cur_level - 1).value();
        if (wanted_mbps <= lower) {
            ++low_samples_;
            if (low_samples_ >= required_low_samples_) {
                policy_->RequestLevel(cur_level - 1);
                low_samples_ = 0;
                // Exponential back-off: each further reduction needs twice
                // as much evidence.
                required_low_samples_ =
                    std::min(required_low_samples_ * 2, params_.max_down_count);
            }
            return;
        }
    }
    low_samples_ = 0;
}

DevfreqGovernorFactory
MakeDevfreqCpubwHwmonFactory(CpubwHwmonParams params)
{
    return [params](DevfreqPolicy* policy) {
        return std::make_unique<DevfreqCpubwHwmonGovernor>(policy, params);
    };
}

}  // namespace aeo
