#include "kernel/msm_thermal.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

MsmThermal::MsmThermal(Simulator* sim, CpufreqPolicy* policy,
                       const ThermalModel* model, Sysfs* sysfs,
                       MsmThermalParams params)
    : sim_(sim),
      policy_(policy),
      model_(model),
      sysfs_(sysfs),
      params_(params),
      poll_task_(sim, [this] { Poll(); })
{
    AEO_ASSERT(sim_ != nullptr && policy_ != nullptr && model_ != nullptr &&
                   sysfs_ != nullptr,
               "msm_thermal wired with null dependency");
    AEO_ASSERT(params_.poll_period > SimTime::Zero(), "bad thermal poll period");
    AEO_ASSERT(params_.levels_per_step > 0, "bad thermal step size");
    AEO_ASSERT(params_.min_cap_level >= 0 &&
                   params_.min_cap_level <= policy_->table().max_level(),
               "bad thermal min cap level %d", params_.min_cap_level);
    AEO_ASSERT(params_.hysteresis_c >= 0.0, "bad thermal hysteresis");
    cap_level_ = policy_->table().max_level();
    RegisterSysfsFiles();
}

MsmThermal::~MsmThermal()
{
    poll_task_.Stop();
}

void
MsmThermal::Start()
{
    poll_task_.Start(params_.poll_period);
}

void
MsmThermal::Stop()
{
    poll_task_.Stop();
    ApplyCap(policy_->table().max_level());
}

int
MsmThermal::stage() const
{
    const int shed = policy_->table().max_level() - cap_level_;
    return (shed + params_.levels_per_step - 1) / params_.levels_per_step;
}

void
MsmThermal::Poll()
{
    // The zone sensor reads the *current* die temperature, so the lazily
    // integrated thermal model must be brought up to now first.
    if (sync_hook_) {
        sync_hook_();
    }
    if (!enabled_) {
        if (cap_level_ != policy_->table().max_level()) {
            ApplyCap(policy_->table().max_level());
            ++unclamp_events_;
        }
        return;
    }
    const double temp = model_->temperature_c();
    if (temp >= params_.trigger_temp_c) {
        const int next = std::max(params_.min_cap_level,
                                  cap_level_ - params_.levels_per_step);
        if (next != cap_level_) {
            ApplyCap(next);
            ++clamp_events_;
            max_stage_ = std::max(max_stage_, stage());
        }
    } else if (temp <= params_.trigger_temp_c - params_.hysteresis_c) {
        const int next = std::min(policy_->table().max_level(),
                                  cap_level_ + params_.levels_per_step);
        if (next != cap_level_) {
            ApplyCap(next);
            ++unclamp_events_;
        }
    }
}

void
MsmThermal::ApplyCap(int level)
{
    cap_level_ = level;
    policy_->SetThermalCapLevel(level);
}

void
MsmThermal::RegisterSysfsFiles()
{
    sysfs_->Register(
        std::string(kThermalZoneSysfsRoot) + "/temp",
        SysfsFile{[this] {
                      if (sync_hook_) {
                          sync_hook_();
                      }
                      // Zone temperature in millidegrees, as on Linux.
                      return StrFormat("%lld",
                                       static_cast<long long>(std::llround(
                                           model_->temperature_c() * 1000.0)));
                  },
                  nullptr});

    sysfs_->Register(std::string(kMsmThermalSysfsRoot) + "/enabled",
                     SysfsFile{
                         [this] { return std::string(enabled_ ? "Y" : "N"); },
                         [this](const std::string& value) {
                             const std::string v = Trim(value);
                             if (v == "Y" || v == "y" || v == "1") {
                                 enabled_ = true;
                                 return true;
                             }
                             if (v == "N" || v == "n" || v == "0") {
                                 enabled_ = false;
                                 return true;
                             }
                             return false;
                         },
                     });

    sysfs_->Register(std::string(kMsmThermalSysfsRoot) + "/temp_threshold",
                     SysfsFile{
                         [this] {
                             return StrFormat("%lld",
                                              static_cast<long long>(std::llround(
                                                  params_.trigger_temp_c)));
                         },
                         [this](const std::string& value) {
                             long long celsius = 0;
                             if (!ParseInt64(Trim(value), &celsius) ||
                                 celsius <= 0) {
                                 return false;
                             }
                             params_.trigger_temp_c =
                                 static_cast<double>(celsius);
                             return true;
                         },
                     });
}

}  // namespace aeo
