/**
 * @file
 * The cpufreq subsystem: separation of policy (governors) and mechanism
 * (the driver setting the cluster frequency), mirroring Linux's design
 * (§II-A). Governors are pluggable and selected at runtime through the
 * scaling_governor sysfs file, exactly the interface the paper's controller
 * uses to take over frequency control.
 */
#ifndef AEO_KERNEL_CPUFREQ_H_
#define AEO_KERNEL_CPUFREQ_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "kernel/meters.h"
#include "kernel/sysfs.h"
#include "sim/simulator.h"
#include "soc/cpu_cluster.h"

namespace aeo {

class CpufreqPolicy;

/** Base class for CPU frequency governors. */
class CpufreqGovernor {
  public:
    virtual ~CpufreqGovernor() = default;

    /** Governor name as it appears in scaling_governor. */
    virtual std::string name() const = 0;

    /** Called when the governor takes control of the policy. */
    virtual void Start() = 0;

    /** Called when the governor is replaced. */
    virtual void Stop() = 0;

    /**
     * Handles a scaling_setspeed write (only the userspace governor
     * accepts).
     *
     * @return true if the speed request was accepted.
     */
    virtual bool SetSpeed(Gigahertz) { return false; }
};

/** Factory producing a governor bound to a policy. */
using CpufreqGovernorFactory =
    std::function<std::unique_ptr<CpufreqGovernor>(CpufreqPolicy*)>;

/** One frequency domain (the Nexus 6 has a single 4-core cluster). */
class CpufreqPolicy {
  public:
    /**
     * @param sim        Simulation executive; must outlive the policy.
     * @param cluster    The managed cluster; must outlive the policy.
     * @param load_meter Busy-time accounting the governors sample.
     * @param sysfs      Virtual sysfs in which to expose the policy files.
     * @param sysfs_root Directory for this policy's files, e.g.
     *                   "/sys/devices/system/cpu/cpu0/cpufreq".
     */
    CpufreqPolicy(Simulator* sim, CpuCluster* cluster,
                  const CpuLoadMeter* load_meter, Sysfs* sysfs,
                  std::string sysfs_root);

    ~CpufreqPolicy();

    CpufreqPolicy(const CpufreqPolicy&) = delete;
    CpufreqPolicy& operator=(const CpufreqPolicy&) = delete;

    /** Registers a governor under its name; panics on duplicates. */
    void RegisterGovernor(const std::string& name, CpufreqGovernorFactory factory);

    /** Switches governors; returns false for an unknown name. */
    bool SetGovernor(const std::string& name);

    /** Name of the active governor ("none" before the first SetGovernor). */
    std::string governor_name() const;

    /** Names of all registered governors, space-separated (sysfs format). */
    std::string AvailableGovernors() const;

    // --- Interface used by governors -------------------------------------

    /** Requests a frequency level; clamped to the scaling min/max limits. */
    void RequestLevel(int level);

    /** Requests the lowest level whose frequency is ≥ @p freq. */
    void RequestFrequencyAtOrAbove(Gigahertz freq);

    /** Current 0-based level. */
    int current_level() const { return cluster_->level(); }

    /** The cluster's OPP table. */
    const FrequencyTable& table() const { return cluster_->table(); }

    /** Cores in the domain. */
    int num_cores() const { return cluster_->num_cores(); }

    /** Busy-time meter for load sampling. */
    const CpuLoadMeter* load_meter() const { return load_meter_; }

    /**
     * Registers a hook that brings the meters up to date (the device model
     * integrates lazily); governors invoke it before sampling.
     */
    void SetSyncHook(std::function<void()> hook) { sync_hook_ = std::move(hook); }

    /** Brings the meters up to date; no-op when no hook is registered. */
    void
    SyncMeters() const
    {
        if (sync_hook_) {
            sync_hook_();
        }
    }

    /** The simulation executive (for governor timers). */
    Simulator* sim() const { return sim_; }

    /** The policy's sysfs directory (e.g. ".../cpufreq/policy4"). */
    const std::string& sysfs_root() const { return sysfs_root_; }

    /** Lower scaling limit (scaling_min_freq), as a level. */
    int min_level_limit() const { return min_level_limit_; }

    /** Upper scaling limit (scaling_max_freq), as a level. */
    int max_level_limit() const { return max_level_limit_; }

    /** Sets the scaling limits (inclusive level range). */
    void SetLevelLimits(int min_level, int max_level);

    /**
     * Thermal ceiling imposed by the msm_thermal driver, as a level. Unlike
     * the user limits it is owned by the kernel: userspace cannot raise it,
     * requests above it are clamped *silently* (the write still succeeds),
     * and scaling_max_freq reads report the effective — thermally capped —
     * limit, exactly how msm_thermal mutates policy->max on hardware.
     */
    void SetThermalCapLevel(int level);

    /** Current thermal ceiling (table max when unthrottled). */
    int thermal_cap_level() const { return thermal_cap_level_; }

    /** The binding upper limit: min(user limit, thermal cap). */
    int effective_max_level() const;

  private:
    void RegisterSysfsFiles();

    Simulator* sim_;
    CpuCluster* cluster_;
    const CpuLoadMeter* load_meter_;
    Sysfs* sysfs_;
    std::string sysfs_root_;
    std::map<std::string, CpufreqGovernorFactory> factories_;
    std::unique_ptr<CpufreqGovernor> governor_;
    std::function<void()> sync_hook_;
    int min_level_limit_ = 0;
    int max_level_limit_ = 0;
    int thermal_cap_level_ = 0;
};

}  // namespace aeo

#endif  // AEO_KERNEL_CPUFREQ_H_
