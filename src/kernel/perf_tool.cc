#include "kernel/perf_tool.h"

#include <algorithm>

#include "common/logging.h"

namespace aeo {

PerfTool::PerfTool(Simulator* sim, const Pmu* pmu, uint64_t rng_seed,
                   PerfToolConfig config)
    : sim_(sim),
      pmu_(pmu),
      rng_(rng_seed),
      config_(config),
      period_(std::max(config.sampling_period, kMinSamplingPeriod)),
      task_(sim, [this] { TakeSample(); })
{
    AEO_ASSERT(sim_ != nullptr && pmu_ != nullptr, "perf tool wired with nulls");
    AEO_ASSERT(config_.cpu_overhead_at_1s >= 0.0 && config_.cpu_overhead_at_1s < 1.0,
               "cpu overhead %f out of [0, 1)", config_.cpu_overhead_at_1s);
    if (config.sampling_period < kMinSamplingPeriod) {
        Warn("perf sampling period %lld ms below the 100 ms floor; clamped",
             static_cast<long long>(config.sampling_period.millis()));
    }
}

void
PerfTool::Start()
{
    if (sync_hook_) {
        sync_hook_();
    }
    last_instr_reading_ = pmu_->giga_instructions();
    last_reading_time_ = sim_->Now();
    task_.Start(period_);
}

void
PerfTool::Stop()
{
    task_.Stop();
}

double
PerfTool::cpu_overhead_fraction() const
{
    if (!task_.running()) {
        return 0.0;
    }
    // The paper measured 40 % overhead at a 100 ms period and 4 % at 1 s:
    // overhead scales with the sampling frequency.
    return std::min(0.9, config_.cpu_overhead_at_1s / period_.seconds());
}

double
PerfTool::power_overhead_mw() const
{
    if (!task_.running()) {
        return 0.0;
    }
    return config_.power_overhead_mw / period_.seconds();
}

void
PerfTool::TakeSample()
{
    if (sync_hook_) {
        sync_hook_();
    }
    const SimTime now = sim_->Now();
    bool stale = false;
    if (injector_ != nullptr) {
        const FaultDecision decision = injector_->OnRead(kPmuFaultPath);
        if (!decision.ok()) {
            // perf missed this interval entirely — no reading is recorded.
            // The next successful sample averages over the elapsed gap, so
            // the rate stays well-defined; the window just has fewer
            // samples (possibly none).
            ++dropped_sample_count_;
            return;
        }
        stale = decision.stale;
    }
    double measured;
    if (stale) {
        // A stale counter read repeats the previous value: the delta is
        // zero and the sample reads as 0 GIPS — plausible-looking garbage,
        // exactly what a wedged PMU produces on hardware.
        ++stale_sample_count_;
        measured = 0.0;
    } else {
        const double instr = pmu_->giga_instructions();
        const double elapsed = (now - last_reading_time_).seconds();
        const double true_gips =
            elapsed > 0.0 ? (instr - last_instr_reading_) / elapsed : 0.0;
        last_instr_reading_ = instr;
        last_reading_time_ = now;
        measured = std::max(
            0.0, true_gips * (1.0 + rng_.Gaussian(0.0, config_.noise_rel_stddev)));
    }
    last_sample_ = GipsSample{now, measured};
    ++sample_count_;
    window_sum_ += measured;
    ++window_count_;
}

PerfWindow
PerfTool::DrainWindow()
{
    PerfWindow window;
    window.samples = window_count_;
    if (window_count_ > 0) {
        window.avg_gips = window_sum_ / static_cast<double>(window_count_);
    }
    window_sum_ = 0.0;
    window_count_ = 0;
    return window;
}

double
PerfTool::DrainWindowAverage()
{
    const PerfWindow window = DrainWindow();
    return window.samples > 0 ? window.avg_gips : last_sample_.gips;
}

}  // namespace aeo
