#include "kernel/perf_tool.h"

#include <algorithm>

#include "common/logging.h"

namespace aeo {

PerfTool::PerfTool(Simulator* sim, const Pmu* pmu, uint64_t rng_seed,
                   PerfToolConfig config)
    : sim_(sim),
      pmu_(pmu),
      rng_(rng_seed),
      config_(config),
      period_(std::max(config.sampling_period, kMinSamplingPeriod)),
      task_(sim, [this] { TakeSample(); })
{
    AEO_ASSERT(sim_ != nullptr && pmu_ != nullptr, "perf tool wired with nulls");
    AEO_ASSERT(config_.cpu_overhead_at_1s >= 0.0 && config_.cpu_overhead_at_1s < 1.0,
               "cpu overhead %f out of [0, 1)", config_.cpu_overhead_at_1s);
    if (config.sampling_period < kMinSamplingPeriod) {
        Warn("perf sampling period %lld ms below the 100 ms floor; clamped",
             static_cast<long long>(config.sampling_period.millis()));
    }
}

void
PerfTool::Start()
{
    if (sync_hook_) {
        sync_hook_();
    }
    last_instr_reading_ = pmu_->giga_instructions();
    task_.Start(period_);
}

void
PerfTool::Stop()
{
    task_.Stop();
}

double
PerfTool::cpu_overhead_fraction() const
{
    if (!task_.running()) {
        return 0.0;
    }
    // The paper measured 40 % overhead at a 100 ms period and 4 % at 1 s:
    // overhead scales with the sampling frequency.
    return std::min(0.9, config_.cpu_overhead_at_1s / period_.seconds());
}

double
PerfTool::power_overhead_mw() const
{
    if (!task_.running()) {
        return 0.0;
    }
    return config_.power_overhead_mw / period_.seconds();
}

void
PerfTool::TakeSample()
{
    if (sync_hook_) {
        sync_hook_();
    }
    const double instr = pmu_->giga_instructions();
    const double true_gips = (instr - last_instr_reading_) / period_.seconds();
    last_instr_reading_ = instr;
    const double measured =
        std::max(0.0, true_gips * (1.0 + rng_.Gaussian(0.0, config_.noise_rel_stddev)));
    last_sample_ = GipsSample{sim_->Now(), measured};
    ++sample_count_;
    window_sum_ += measured;
    ++window_count_;
}

double
PerfTool::DrainWindowAverage()
{
    double result;
    if (window_count_ > 0) {
        result = window_sum_ / static_cast<double>(window_count_);
    } else {
        result = last_sample_.gips;
    }
    window_sum_ = 0.0;
    window_count_ = 0;
    return result;
}

}  // namespace aeo
