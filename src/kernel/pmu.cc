#include "kernel/pmu.h"

#include "common/logging.h"

namespace aeo {

void
Pmu::Advance(double gips, double freq_ghz, double busy_cores, double gbps, SimTime dt)
{
    AEO_ASSERT(gips >= 0.0 && freq_ghz >= 0.0 && busy_cores >= 0.0 && gbps >= 0.0,
               "negative PMU rates");
    AEO_ASSERT(dt >= SimTime::Zero(), "negative PMU interval");
    const double seconds = dt.seconds();
    giga_instructions_ += gips * seconds;
    giga_cycles_ += freq_ghz * busy_cores * seconds;
    traffic_gb_ += gbps * seconds;
}

}  // namespace aeo
