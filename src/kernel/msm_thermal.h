/**
 * @file
 * A model of Qualcomm's msm_thermal driver, the in-kernel throttling agent
 * the paper's Nexus 6 ships with: it polls the SoC thermal zone and, when
 * the die runs hot, steps the CPU frequency ceiling down in stages —
 * *silently*, underneath whatever governor userspace selected. A userspace
 * write to scaling_setspeed keeps "succeeding" while the delivered
 * frequency is lower; only read-back (scaling_cur_freq / scaling_max_freq)
 * exposes the clamp. This is the silent failure mode the thermal-robustness
 * layer closes the loop against.
 *
 * Exposed sysfs nodes (real paths from the MSM kernel tree):
 *
 *   /sys/class/thermal/thermal_zone0/temp            zone temp, m°C (RO)
 *   /sys/module/msm_thermal/parameters/enabled       "Y"/"N" (RW)
 *   /sys/module/msm_thermal/parameters/temp_threshold  °C (RW)
 */
#ifndef AEO_KERNEL_MSM_THERMAL_H_
#define AEO_KERNEL_MSM_THERMAL_H_

#include <cstdint>
#include <string>

#include "kernel/cpufreq.h"
#include "kernel/sysfs.h"
#include "sim/periodic_task.h"
#include "sim/simulator.h"
#include "soc/thermal_model.h"

namespace aeo {

/** Sysfs directory of the thermal zone the driver monitors. */
inline constexpr const char kThermalZoneSysfsRoot[] =
    "/sys/class/thermal/thermal_zone0";

/** Sysfs directory of the driver's module parameters. */
inline constexpr const char kMsmThermalSysfsRoot[] =
    "/sys/module/msm_thermal/parameters";

/** Driver tuning (defaults follow the stock MSM configuration's shape). */
struct MsmThermalParams {
    /** Polling interval (the stock driver checks every 250 ms). */
    SimTime poll_period = SimTime::Millis(250);
    /** Zone temperature at which throttling starts, °C. */
    double trigger_temp_c = 42.0;
    /** Degrees below the trigger before a stage is unwound. */
    double hysteresis_c = 3.0;
    /** OPP levels shed (or restored) per hot (cool) poll — the stage size. */
    int levels_per_step = 2;
    /** Lowest level the cap may reach (the driver never stalls the SoC). */
    int min_cap_level = 4;
};

/** Polls a thermal zone and stages the cpufreq ceiling up or down. */
class MsmThermal {
  public:
    /**
     * @param sim     Simulation executive; must outlive the driver.
     * @param policy  The cpufreq policy whose ceiling is managed.
     * @param model   Zone temperature source; must outlive the driver.
     * @param sysfs   Virtual sysfs in which to expose the nodes.
     * @param params  Driver tuning.
     */
    MsmThermal(Simulator* sim, CpufreqPolicy* policy, const ThermalModel* model,
               Sysfs* sysfs, MsmThermalParams params = {});

    ~MsmThermal();

    MsmThermal(const MsmThermal&) = delete;
    MsmThermal& operator=(const MsmThermal&) = delete;

    /** Starts polling. */
    void Start();

    /** Stops polling and restores the unthrottled ceiling. */
    void Stop();

    /** Current frequency ceiling imposed on the policy, as a level. */
    int cap_level() const { return cap_level_; }

    /** Throttling stage: 0 = unthrottled, each stage sheds levels_per_step. */
    int stage() const;

    /** Deepest stage reached since construction. */
    int max_stage_reached() const { return max_stage_; }

    /** Number of polls that tightened the cap. */
    uint64_t clamp_event_count() const { return clamp_events_; }

    /** Number of polls that relaxed the cap. */
    uint64_t unclamp_event_count() const { return unclamp_events_; }

    /** Registers a hook that integrates the thermal model up to now. */
    void SetSyncHook(std::function<void()> hook) { sync_hook_ = std::move(hook); }

    const MsmThermalParams& params() const { return params_; }

  private:
    void Poll();
    void ApplyCap(int level);
    void RegisterSysfsFiles();

    Simulator* sim_;
    CpufreqPolicy* policy_;
    const ThermalModel* model_;
    Sysfs* sysfs_;
    MsmThermalParams params_;
    std::function<void()> sync_hook_;
    PeriodicTask poll_task_;
    bool enabled_ = true;
    int cap_level_;
    int max_stage_ = 0;
    uint64_t clamp_events_ = 0;
    uint64_t unclamp_events_ = 0;
};

}  // namespace aeo

#endif  // AEO_KERNEL_MSM_THERMAL_H_
