/**
 * @file
 * The performance monitoring unit (PMU): cumulative hardware counters for
 * retired instructions, cycles and bus traffic. The paper derives its GIPS
 * performance metric from the PMU instruction counter via perf (§III-B2),
 * avoiding any application source-code modification.
 */
#ifndef AEO_KERNEL_PMU_H_
#define AEO_KERNEL_PMU_H_

#include "sim/time.h"

namespace aeo {

/** Cumulative hardware event counters. */
class Pmu {
  public:
    Pmu() = default;

    /**
     * Advances the counters over a segment of wall time.
     *
     * @param gips       Foreground instruction rate during the segment.
     * @param freq_ghz   Cluster frequency (for the cycle counter).
     * @param busy_cores Busy core-seconds per second.
     * @param gbps       Bus traffic.
     * @param dt         Segment duration.
     */
    void Advance(double gips, double freq_ghz, double busy_cores, double gbps,
                 SimTime dt);

    /** Retired foreground instructions, in units of 1e9. */
    double giga_instructions() const { return giga_instructions_; }

    /** Elapsed busy cycles across cores, in units of 1e9. */
    double giga_cycles() const { return giga_cycles_; }

    /** Total bus traffic observed, GB. */
    double traffic_gb() const { return traffic_gb_; }

  private:
    double giga_instructions_ = 0.0;
    double giga_cycles_ = 0.0;
    double traffic_gb_ = 0.0;
};

}  // namespace aeo

#endif  // AEO_KERNEL_PMU_H_
