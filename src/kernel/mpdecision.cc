#include "kernel/mpdecision.h"

#include "common/logging.h"

namespace aeo {

Mpdecision::Mpdecision(Simulator* sim, CpuCluster* cluster,
                       const CpuLoadMeter* load_meter, MpdecisionParams params)
    : sim_(sim),
      cluster_(cluster),
      load_meter_(load_meter),
      params_(params),
      timer_(sim, [this] { Sample(); })
{
    AEO_ASSERT(sim_ != nullptr && cluster_ != nullptr && load_meter_ != nullptr,
               "mpdecision wired with null dependency");
    AEO_ASSERT(params_.min_online >= 1, "at least one core must stay online");
    AEO_ASSERT(params_.offline_threshold < params_.online_threshold,
               "thresholds out of order");
}

void
Mpdecision::Start()
{
    window_.emplace(load_meter_);
    timer_.Start(params_.sampling_period);
}

void
Mpdecision::Stop()
{
    timer_.Stop();
    window_.reset();
    if (cluster_->online_cores() != cluster_->num_cores()) {
        cluster_->SetOnlineCores(cluster_->num_cores());
        ++transition_count_;
    }
}

void
Mpdecision::Sample()
{
    if (sync_hook_) {
        sync_hook_();
    }
    const int online = cluster_->online_cores();
    const double load = window_->SampleLoad(online);

    if (load > params_.online_threshold && online < cluster_->num_cores()) {
        cluster_->SetOnlineCores(online + 1);
        ++transition_count_;
    } else if (load < params_.offline_threshold && online > params_.min_online) {
        cluster_->SetOnlineCores(online - 1);
        ++transition_count_;
    }
}

}  // namespace aeo
