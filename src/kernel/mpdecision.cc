#include "kernel/mpdecision.h"

#include "common/logging.h"

namespace aeo {

Mpdecision::Mpdecision(Simulator* sim, CpuCluster* cluster,
                       const CpuLoadMeter* load_meter, MpdecisionParams params)
    : sim_(sim), params_(params), timer_(sim, [this] { Sample(); })
{
    AEO_ASSERT(sim_ != nullptr && cluster != nullptr && load_meter != nullptr,
               "mpdecision wired with null dependency");
    AEO_ASSERT(params_.min_online >= 1, "at least one core must stay online");
    AEO_ASSERT(params_.offline_threshold < params_.online_threshold,
               "thresholds out of order");
    Domain domain;
    domain.cluster = cluster;
    domain.load_meter = load_meter;
    domains_.push_back(std::move(domain));
}

void
Mpdecision::AddCluster(CpuCluster* cluster, const CpuLoadMeter* load_meter)
{
    AEO_ASSERT(cluster != nullptr && load_meter != nullptr,
               "mpdecision domain wired with null dependency");
    AEO_ASSERT(!running(), "AddCluster() after Start()");
    Domain domain;
    domain.cluster = cluster;
    domain.load_meter = load_meter;
    domains_.push_back(std::move(domain));
}

void
Mpdecision::Start()
{
    for (Domain& domain : domains_) {
        domain.window.emplace(domain.load_meter);
    }
    timer_.Start(params_.sampling_period);
}

void
Mpdecision::Stop()
{
    timer_.Stop();
    for (Domain& domain : domains_) {
        domain.window.reset();
        if (domain.cluster->online_cores() != domain.cluster->num_cores()) {
            domain.cluster->SetOnlineCores(domain.cluster->num_cores());
            ++transition_count_;
        }
    }
}

void
Mpdecision::Sample()
{
    if (sync_hook_) {
        sync_hook_();
    }
    for (Domain& domain : domains_) {
        SampleDomain(&domain);
    }
}

void
Mpdecision::SampleDomain(Domain* domain)
{
    CpuCluster* cluster = domain->cluster;
    const int online = cluster->online_cores();
    const double load = domain->window->SampleLoad(online);

    if (load > params_.online_threshold && online < cluster->num_cores()) {
        cluster->SetOnlineCores(online + 1);
        ++transition_count_;
    } else if (load < params_.offline_threshold && online > params_.min_online) {
        cluster->SetOnlineCores(online - 1);
        ++transition_count_;
    }
}

}  // namespace aeo
