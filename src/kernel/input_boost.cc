#include "kernel/input_boost.h"

#include "common/logging.h"

namespace aeo {

InputBoost::InputBoost(Simulator* sim, CpufreqPolicy* policy, InputBoostParams params)
    : sim_(sim), policy_(policy), params_(params)
{
    AEO_ASSERT(sim_ != nullptr && policy_ != nullptr, "input boost wired with nulls");
    AEO_ASSERT(params_.duration > SimTime::Zero(), "boost duration must be positive");
}

void
InputBoost::OnTouch()
{
    ++touch_count_;
    boost_until_ = sim_->Now() + params_.duration;
    if (!boosted_) {
        boosted_ = true;
        saved_min_level_ = policy_->min_level_limit();
        const int boost_level =
            policy_->table().LevelAtOrAbove(params_.boost_freq);
        if (boost_level > saved_min_level_) {
            policy_->SetLevelLimits(boost_level, policy_->max_level_limit());
        }
        sim_->ScheduleAfter(params_.duration, [this] { Expire(); });
    }
}

void
InputBoost::Expire()
{
    if (!boosted_) {
        return;
    }
    if (sim_->Now() < boost_until_) {
        // A later touch extended the window; re-arm for the remainder.
        sim_->ScheduleAt(boost_until_, [this] { Expire(); });
        return;
    }
    boosted_ = false;
    policy_->SetLevelLimits(saved_min_level_, policy_->max_level_limit());
}

}  // namespace aeo
