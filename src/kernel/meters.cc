#include "kernel/meters.h"

#include "common/logging.h"

namespace aeo {

void
CpuLoadMeter::Advance(double busy_cores, double max_core_load, SimTime dt)
{
    AEO_ASSERT(busy_cores >= 0.0, "negative busy cores");
    AEO_ASSERT(max_core_load >= 0.0 && max_core_load <= 1.0 + 1e-9,
               "core load %f out of [0, 1]", max_core_load);
    AEO_ASSERT(dt >= SimTime::Zero(), "negative interval");
    busy_core_seconds_ += busy_cores * dt.seconds();
    core_load_seconds_ += max_core_load * dt.seconds();
    elapsed_ += dt;
}

CpuLoadWindow::CpuLoadWindow(const CpuLoadMeter* meter) : meter_(meter)
{
    AEO_ASSERT(meter_ != nullptr, "null meter");
    last_busy_ = meter_->busy_core_seconds();
    last_core_load_ = meter_->core_load_seconds();
    last_elapsed_ = meter_->elapsed();
}

double
CpuLoadWindow::SampleLoad(int num_cores)
{
    AEO_ASSERT(num_cores >= 1, "need at least one core");
    const double busy = meter_->busy_core_seconds();
    const SimTime elapsed = meter_->elapsed();
    const double dt = (elapsed - last_elapsed_).seconds();
    const double delta_busy = busy - last_busy_;
    last_busy_ = busy;
    last_core_load_ = meter_->core_load_seconds();
    last_elapsed_ = elapsed;
    if (dt <= 0.0) {
        return 0.0;
    }
    const double load = delta_busy / (dt * static_cast<double>(num_cores));
    return load > 1.0 ? 1.0 : load;
}

double
CpuLoadWindow::SampleCoreLoad()
{
    const double core_load = meter_->core_load_seconds();
    const SimTime elapsed = meter_->elapsed();
    const double dt = (elapsed - last_elapsed_).seconds();
    const double delta = core_load - last_core_load_;
    last_busy_ = meter_->busy_core_seconds();
    last_core_load_ = core_load;
    last_elapsed_ = elapsed;
    if (dt <= 0.0) {
        return 0.0;
    }
    const double load = delta / dt;
    return load > 1.0 ? 1.0 : load;
}

void
BusTrafficMeter::Advance(double gbps, SimTime dt)
{
    AEO_ASSERT(gbps >= 0.0, "negative traffic");
    AEO_ASSERT(dt >= SimTime::Zero(), "negative interval");
    gigabytes_ += gbps * dt.seconds();
}

BusTrafficWindow::BusTrafficWindow(const BusTrafficMeter* meter, SimTime start)
    : meter_(meter), last_time_(start)
{
    AEO_ASSERT(meter_ != nullptr, "null meter");
    last_gigabytes_ = meter_->gigabytes();
}

double
BusTrafficWindow::SampleMbps(SimTime now)
{
    const double gb = meter_->gigabytes();
    const double dt = (now - last_time_).seconds();
    const double delta_gb = gb - last_gigabytes_;
    last_gigabytes_ = gb;
    last_time_ = now;
    if (dt <= 0.0) {
        return 0.0;
    }
    return delta_gb * 1000.0 / dt;
}

}  // namespace aeo
