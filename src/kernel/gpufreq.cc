#include "kernel/gpufreq.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

void
GpuBusyMeter::Advance(double busy, SimTime dt)
{
    AEO_ASSERT(busy >= 0.0 && busy <= 1.0 + 1e-9, "GPU busy %f out of [0, 1]", busy);
    AEO_ASSERT(dt >= SimTime::Zero(), "negative interval");
    busy_seconds_ += busy * dt.seconds();
    elapsed_ += dt;
}

GpuFreqPolicy::GpuFreqPolicy(Simulator* sim, GpuDomain* gpu, const GpuBusyMeter* meter,
                             Sysfs* sysfs, std::string sysfs_root)
    : sim_(sim), gpu_(gpu), meter_(meter), sysfs_(sysfs), sysfs_root_(std::move(sysfs_root))
{
    AEO_ASSERT(sim_ != nullptr && gpu_ != nullptr && meter_ != nullptr &&
                   sysfs_ != nullptr,
               "gpufreq policy wired with null dependency");
    RegisterSysfsFiles();
}

GpuFreqPolicy::~GpuFreqPolicy()
{
    if (governor_) {
        governor_->Stop();
    }
}

void
GpuFreqPolicy::RegisterGovernor(const std::string& name, GpuGovernorFactory factory)
{
    AEO_ASSERT(factory != nullptr, "null GPU governor factory for '%s'", name.c_str());
    const auto [it, inserted] = factories_.emplace(name, std::move(factory));
    (void)it;
    AEO_ASSERT(inserted, "GPU governor '%s' registered twice", name.c_str());
}

bool
GpuFreqPolicy::SetGovernor(const std::string& name)
{
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
        return false;
    }
    if (governor_) {
        governor_->Stop();
        governor_.reset();
    }
    governor_ = it->second(this);
    AEO_ASSERT(governor_ != nullptr, "GPU factory for '%s' returned null", name.c_str());
    governor_->Start();
    return true;
}

std::string
GpuFreqPolicy::governor_name() const
{
    return governor_ ? governor_->name() : "none";
}

void
GpuFreqPolicy::RequestLevel(int level)
{
    if (level < 0) {
        level = 0;
    }
    if (level > gpu_->max_level()) {
        level = gpu_->max_level();
    }
    gpu_->SetLevel(level);
}

void
GpuFreqPolicy::RegisterSysfsFiles()
{
    const auto mhz_of = [this] {
        return StrFormat("%lld", static_cast<long long>(gpu_->mhz() + 0.5));
    };

    sysfs_->Register(sysfs_root_ + "/governor",
                     SysfsFile{
                         [this] { return governor_name(); },
                         [this](const std::string& value) { return SetGovernor(Trim(value)); },
                     });

    sysfs_->Register(sysfs_root_ + "/cur_freq", SysfsFile{mhz_of, nullptr});

    sysfs_->Register(sysfs_root_ + "/available_frequencies",
                     SysfsFile{[this] {
                                   std::vector<std::string> fields;
                                   for (int level = 0; level < gpu_->size(); ++level) {
                                       fields.push_back(StrFormat(
                                           "%lld", static_cast<long long>(
                                                       gpu_->MhzAt(level) + 0.5)));
                                   }
                                   return Join(fields, " ");
                               },
                               nullptr});

    sysfs_->Register(sysfs_root_ + "/userspace/set_freq",
                     SysfsFile{
                         mhz_of,
                         [this](const std::string& value) {
                             if (!governor_) {
                                 return false;
                             }
                             long long mhz = 0;
                             if (!ParseInt64(value, &mhz) || mhz <= 0) {
                                 return false;
                             }
                             return governor_->SetClock(static_cast<double>(mhz));
                         },
                     });
}

AdrenoTzGovernor::AdrenoTzGovernor(GpuFreqPolicy* policy, AdrenoTzParams params)
    : policy_(policy), params_(params), timer_(policy->sim(), [this] { Sample(); })
{
    AEO_ASSERT(policy_ != nullptr, "adreno-tz governor needs a policy");
    AEO_ASSERT(params_.down_threshold < params_.up_threshold,
               "thresholds out of order");
}

void
AdrenoTzGovernor::Start()
{
    policy_->SyncMeters();
    last_busy_seconds_ = policy_->busy_meter()->busy_seconds();
    last_elapsed_ = policy_->busy_meter()->elapsed();
    timer_.Start(params_.sampling_period);
}

void
AdrenoTzGovernor::Stop()
{
    timer_.Stop();
}

void
AdrenoTzGovernor::Sample()
{
    policy_->SyncMeters();
    const double busy_seconds = policy_->busy_meter()->busy_seconds();
    const SimTime elapsed = policy_->busy_meter()->elapsed();
    const double dt = (elapsed - last_elapsed_).seconds();
    const double busy = dt > 0.0 ? (busy_seconds - last_busy_seconds_) / dt : 0.0;
    last_busy_seconds_ = busy_seconds;
    last_elapsed_ = elapsed;

    const int level = policy_->current_level();
    if (busy > params_.up_threshold) {
        policy_->RequestLevel(level + 1);
    } else if (busy < params_.down_threshold) {
        policy_->RequestLevel(level - 1);
    }
}

GpuGovernorFactory
MakeAdrenoTzFactory(AdrenoTzParams params)
{
    return [params](GpuFreqPolicy* policy) {
        return std::make_unique<AdrenoTzGovernor>(policy, params);
    };
}

GpuGovernorFactory
MakeGpuUserspaceFactory()
{
    return [](GpuFreqPolicy* policy) {
        return std::make_unique<GpuUserspaceGovernor>(policy);
    };
}

GpuGovernorFactory
MakeGpuPerformanceFactory()
{
    return [](GpuFreqPolicy* policy) {
        return std::make_unique<GpuPerformanceGovernor>(policy);
    };
}

}  // namespace aeo
