/**
 * @file
 * The devfreq subsystem managing the memory bus, Linux's DVFS framework for
 * non-CPU devices (§II-A). Structurally parallel to cpufreq: pluggable
 * governors selected through sysfs, with the cpubw_hwmon governor as the
 * Android default for the CPU-to-memory bus.
 */
#ifndef AEO_KERNEL_DEVFREQ_H_
#define AEO_KERNEL_DEVFREQ_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "kernel/meters.h"
#include "kernel/sysfs.h"
#include "sim/simulator.h"
#include "soc/memory_bus.h"

namespace aeo {

class DevfreqPolicy;

/** Base class for memory-bus bandwidth governors. */
class DevfreqGovernor {
  public:
    virtual ~DevfreqGovernor() = default;

    /** Governor name as it appears in the governor sysfs file. */
    virtual std::string name() const = 0;

    /** Called when the governor takes control. */
    virtual void Start() = 0;

    /** Called when the governor is replaced. */
    virtual void Stop() = 0;

    /** Handles a userspace set_freq write; only userspace accepts. */
    virtual bool SetBandwidth(MegabytesPerSecond) { return false; }
};

/** Factory producing a governor bound to a policy. */
using DevfreqGovernorFactory =
    std::function<std::unique_ptr<DevfreqGovernor>(DevfreqPolicy*)>;

/** The memory-bus frequency domain. */
class DevfreqPolicy {
  public:
    /**
     * @param sim           Simulation executive; must outlive the policy.
     * @param bus           The managed bus; must outlive the policy.
     * @param traffic_meter Bus-traffic accounting the hwmon governor samples.
     * @param sysfs         Virtual sysfs for the policy files.
     * @param sysfs_root    Directory, e.g. "/sys/class/devfreq/qcom,cpubw".
     */
    DevfreqPolicy(Simulator* sim, MemoryBus* bus,
                  const BusTrafficMeter* traffic_meter, Sysfs* sysfs,
                  std::string sysfs_root);

    ~DevfreqPolicy();

    DevfreqPolicy(const DevfreqPolicy&) = delete;
    DevfreqPolicy& operator=(const DevfreqPolicy&) = delete;

    /** Registers a governor under its name; panics on duplicates. */
    void RegisterGovernor(const std::string& name, DevfreqGovernorFactory factory);

    /** Switches governors; returns false for an unknown name. */
    bool SetGovernor(const std::string& name);

    /** Name of the active governor ("none" before the first SetGovernor). */
    std::string governor_name() const;

    /** Names of all registered governors, space-separated. */
    std::string AvailableGovernors() const;

    // --- Interface used by governors -------------------------------------

    /** Requests a bandwidth level, clamped to the min/max limits. */
    void RequestLevel(int level);

    /** Requests the smallest level with bandwidth ≥ @p need. */
    void RequestBandwidthAtOrAbove(MegabytesPerSecond need);

    /** Current 0-based level. */
    int current_level() const { return bus_->level(); }

    /** The bandwidth table. */
    const BandwidthTable& table() const { return bus_->table(); }

    /** Traffic meter for hwmon-style sampling. */
    const BusTrafficMeter* traffic_meter() const { return traffic_meter_; }

    /** Registers a hook that brings the meters up to date before sampling. */
    void SetSyncHook(std::function<void()> hook) { sync_hook_ = std::move(hook); }

    /** Brings the meters up to date; no-op when no hook is registered. */
    void
    SyncMeters() const
    {
        if (sync_hook_) {
            sync_hook_();
        }
    }

    /** The simulation executive (for governor timers). */
    Simulator* sim() const { return sim_; }

    /** Lower limit as a level. */
    int min_level_limit() const { return min_level_limit_; }

    /** Upper limit as a level. */
    int max_level_limit() const { return max_level_limit_; }

    /** Sets the level limits (inclusive). */
    void SetLevelLimits(int min_level, int max_level);

  private:
    void RegisterSysfsFiles();

    Simulator* sim_;
    MemoryBus* bus_;
    const BusTrafficMeter* traffic_meter_;
    Sysfs* sysfs_;
    std::string sysfs_root_;
    std::map<std::string, DevfreqGovernorFactory> factories_;
    std::unique_ptr<DevfreqGovernor> governor_;
    std::function<void()> sync_hook_;
    int min_level_limit_ = 0;
    int max_level_limit_ = 0;
};

}  // namespace aeo

#endif  // AEO_KERNEL_DEVFREQ_H_
