#include "kernel/loadavg.h"

#include <cmath>

#include "common/logging.h"

namespace aeo {

namespace {
constexpr double kWindowSeconds = 60.0;
}  // namespace

LoadAvg::LoadAvg(double resident_tasks)
    : resident_tasks_(resident_tasks), value_(resident_tasks)
{
    AEO_ASSERT(resident_tasks >= 0.0, "negative resident task pressure");
}

void
LoadAvg::Advance(double runnable, SimTime dt)
{
    AEO_ASSERT(runnable >= 0.0, "negative runnable count");
    AEO_ASSERT(dt >= SimTime::Zero(), "negative interval");
    const double alpha = std::exp(-dt.seconds() / kWindowSeconds);
    const double target = resident_tasks_ + runnable;
    value_ = value_ * alpha + target * (1.0 - alpha);
}

}  // namespace aeo
