/**
 * @file
 * Cumulative activity meters the kernel layer reads.
 *
 * The device model advances these whenever it integrates a segment of
 * simulated time; governors and instrumentation take snapshots and compute
 * windowed deltas — the same structure as Linux's per-CPU time accounting
 * and the bus-traffic hardware monitor behind cpubw_hwmon.
 */
#ifndef AEO_KERNEL_METERS_H_
#define AEO_KERNEL_METERS_H_

#include "sim/time.h"

namespace aeo {

/** Accumulates busy core-seconds, busiest-core load and wall time. */
class CpuLoadMeter {
  public:
    /**
     * Adds @p dt of wall time during which @p busy_cores cores were busy and
     * the busiest core's utilization was @p max_core_load (in [0, 1]).
     *
     * Android's interactive governor keys off the *busiest* CPU's load, not
     * the cluster average — a two-thread burst pegs two cores at 100 % and
     * must trigger the hispeed ramp even though the 4-core average is 0.5.
     */
    void Advance(double busy_cores, double max_core_load, SimTime dt);

    /** Total busy core-seconds since construction. */
    double busy_core_seconds() const { return busy_core_seconds_; }

    /** Time-integral of the busiest-core load, seconds. */
    double core_load_seconds() const { return core_load_seconds_; }

    /** Total wall time observed. */
    SimTime elapsed() const { return elapsed_; }

  private:
    double busy_core_seconds_ = 0.0;
    double core_load_seconds_ = 0.0;
    SimTime elapsed_;
};

/** Snapshot-and-delta helper for CpuLoadMeter. */
class CpuLoadWindow {
  public:
    explicit CpuLoadWindow(const CpuLoadMeter* meter);

    /**
     * Returns the average busy fraction per core over the window since the
     * last call (or construction) and restarts the window.
     *
     * @param num_cores Cores over which to normalize.
     * @return Load in [0, 1]; 0 if no time elapsed.
     */
    double SampleLoad(int num_cores);

    /**
     * Returns the busiest-core average load over the window since the last
     * call and restarts the window (what interactive/ondemand sample).
     */
    double SampleCoreLoad();

  private:
    const CpuLoadMeter* meter_;
    double last_busy_ = 0.0;
    double last_core_load_ = 0.0;
    SimTime last_elapsed_;
};

/** Accumulates memory-bus traffic in bytes. */
class BusTrafficMeter {
  public:
    /** Adds @p dt of wall time at @p gbps of traffic. */
    void Advance(double gbps, SimTime dt);

    /** Total bytes transferred (in GB, to keep magnitudes sane). */
    double gigabytes() const { return gigabytes_; }

  private:
    double gigabytes_ = 0.0;
};

/** Snapshot-and-delta helper for BusTrafficMeter. */
class BusTrafficWindow {
  public:
    explicit BusTrafficWindow(const BusTrafficMeter* meter, SimTime start);

    /**
     * Returns average traffic in MBps since the last call and restarts the
     * window.
     *
     * @param now Current simulated time.
     */
    double SampleMbps(SimTime now);

  private:
    const BusTrafficMeter* meter_;
    double last_gigabytes_ = 0.0;
    SimTime last_time_;
};

}  // namespace aeo

#endif  // AEO_KERNEL_METERS_H_
