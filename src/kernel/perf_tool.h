/**
 * @file
 * A model of the Linux perf tool as deployed on the paper's userdebug
 * Android build (§IV-B, §V-A1):
 *
 *  - minimum sampling period 100 ms;
 *  - a computation overhead that scales inversely with the sampling period
 *    (the paper measured 40 % at 100 ms and 4 % at 1 s — perf takes ~1.04 s
 *    to report a 1 s measurement);
 *  - ~15 mW of power overhead while sampling at 1 s;
 *  - sampled GIPS carries measurement noise.
 *
 * The device model queries cpu_overhead_fraction() and power_overhead_mw()
 * so the instrumentation cost is physically charged to the plant, exactly
 * the effect the paper works around by choosing a 2 s control cycle.
 */
#ifndef AEO_KERNEL_PERF_TOOL_H_
#define AEO_KERNEL_PERF_TOOL_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "fault/fault_injector.h"
#include "kernel/pmu.h"
#include "sim/periodic_task.h"
#include "sim/simulator.h"

namespace aeo {

/** Injector path guarding PMU counter reads (perf sampling). */
inline constexpr const char kPmuFaultPath[] = "/sys/kernel/pmu/instructions";

/** Configuration of the perf sampler. */
struct PerfToolConfig {
    /** Sampling period; clamped to the 100 ms minimum. */
    SimTime sampling_period = SimTime::FromSeconds(1);
    /** CPU overhead fraction when sampling at 1 s (paper: 4 %). */
    double cpu_overhead_at_1s = 0.04;
    /** Power overhead while sampling at 1 s, mW (paper: 15 mW). */
    double power_overhead_mw = 15.0;
    /** Relative standard deviation of a GIPS sample. */
    double noise_rel_stddev = 0.015;
};

/** One GIPS sample. */
struct GipsSample {
    SimTime when;
    double gips = 0.0;
};

/** One control-cycle measurement window. */
struct PerfWindow {
    /** Average GIPS of the window's samples; 0 when none arrived. */
    double avg_gips = 0.0;
    /** Samples that actually arrived in the window. The controller treats
     * an empty window (all samples dropped) as "no measurement". */
    uint64_t samples = 0;
};

/** Periodic GIPS sampler over the PMU instruction counter. */
class PerfTool {
  public:
    /** Hardware floor on the sampling period (§IV-B). */
    static constexpr SimTime kMinSamplingPeriod = SimTime::Millis(100);

    /**
     * @param sim      Simulation executive; must outlive the tool.
     * @param pmu      Counter source; must outlive the tool.
     * @param rng_seed Seed for measurement noise.
     * @param config   Sampler parameters.
     */
    PerfTool(Simulator* sim, const Pmu* pmu, uint64_t rng_seed,
             PerfToolConfig config = {});

    /** Starts sampling. */
    void Start();

    /** Stops sampling; overheads drop to zero. */
    void Stop();

    /** True while sampling. */
    bool running() const { return task_.running(); }

    /** The effective (clamped) sampling period. */
    SimTime effective_period() const { return period_; }

    /** Fraction of foreground compute consumed by the sampler right now. */
    double cpu_overhead_fraction() const;

    /** Sampler power draw right now, mW. */
    double power_overhead_mw() const;

    /** Most recent sample; zero before the first. */
    GipsSample LastSample() const { return last_sample_; }

    /**
     * The samples taken since the previous drain (the controller calls this
     * once per control cycle; the paper's controller likewise averages the
     * ~2 perf readings per cycle). Dropped samples (injected PMU faults)
     * reduce the window's count, possibly to zero — the caller decides how
     * to degrade.
     */
    PerfWindow DrainWindow();

    /**
     * Legacy drain: the window average, falling back to the last sample if
     * none arrived in the window, and 0 if nothing has been sampled yet.
     */
    double DrainWindowAverage();

    /** Number of samples taken since Start(). */
    uint64_t sample_count() const { return sample_count_; }

    /** Samples lost to injected PMU read failures. */
    uint64_t dropped_sample_count() const { return dropped_sample_count_; }

    /** Samples served stale counter values (measured as 0 GIPS). */
    uint64_t stale_sample_count() const { return stale_sample_count_; }

    /** Hooks an injector into PMU reads; nullptr disables injection. */
    void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

    /** Registers a hook that brings the PMU up to date before sampling. */
    void SetSyncHook(std::function<void()> hook) { sync_hook_ = std::move(hook); }

  private:
    void TakeSample();

    Simulator* sim_;
    const Pmu* pmu_;
    Rng rng_;
    std::function<void()> sync_hook_;
    PerfToolConfig config_;
    SimTime period_;
    PeriodicTask task_;
    FaultInjector* injector_ = nullptr;
    double last_instr_reading_ = 0.0;
    SimTime last_reading_time_;
    GipsSample last_sample_;
    uint64_t sample_count_ = 0;
    uint64_t dropped_sample_count_ = 0;
    uint64_t stale_sample_count_ = 0;
    double window_sum_ = 0.0;
    uint64_t window_count_ = 0;
};

}  // namespace aeo

#endif  // AEO_KERNEL_PERF_TOOL_H_
