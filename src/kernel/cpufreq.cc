#include "kernel/cpufreq.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

CpufreqPolicy::CpufreqPolicy(Simulator* sim, CpuCluster* cluster,
                             const CpuLoadMeter* load_meter, Sysfs* sysfs,
                             std::string sysfs_root)
    : sim_(sim),
      cluster_(cluster),
      load_meter_(load_meter),
      sysfs_(sysfs),
      sysfs_root_(std::move(sysfs_root))
{
    AEO_ASSERT(sim_ != nullptr && cluster_ != nullptr && load_meter_ != nullptr &&
                   sysfs_ != nullptr,
               "cpufreq policy wired with null dependency");
    max_level_limit_ = cluster_->table().max_level();
    thermal_cap_level_ = cluster_->table().max_level();
    RegisterSysfsFiles();
}

CpufreqPolicy::~CpufreqPolicy()
{
    if (governor_) {
        governor_->Stop();
    }
}

void
CpufreqPolicy::RegisterGovernor(const std::string& name, CpufreqGovernorFactory factory)
{
    AEO_ASSERT(factory != nullptr, "null governor factory for '%s'", name.c_str());
    const auto [it, inserted] = factories_.emplace(name, std::move(factory));
    (void)it;
    AEO_ASSERT(inserted, "cpufreq governor '%s' registered twice", name.c_str());
}

bool
CpufreqPolicy::SetGovernor(const std::string& name)
{
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
        return false;
    }
    if (governor_) {
        governor_->Stop();
        governor_.reset();
    }
    governor_ = it->second(this);
    AEO_ASSERT(governor_ != nullptr, "factory for '%s' returned null", name.c_str());
    governor_->Start();
    return true;
}

std::string
CpufreqPolicy::governor_name() const
{
    return governor_ ? governor_->name() : "none";
}

std::string
CpufreqPolicy::AvailableGovernors() const
{
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) {
        names.push_back(name);
    }
    return Join(names, " ");
}

void
CpufreqPolicy::RequestLevel(int level)
{
    // The thermal cap binds over the user limits — when the driver has
    // clamped below scaling_min_freq, the cap wins (as on hardware, where
    // msm_thermal writes policy->max underneath userspace).
    const int ceiling = effective_max_level();
    const int floor = std::min(min_level_limit_, ceiling);
    cluster_->SetLevel(std::clamp(level, floor, ceiling));
}

int
CpufreqPolicy::effective_max_level() const
{
    return std::min(max_level_limit_, thermal_cap_level_);
}

void
CpufreqPolicy::SetThermalCapLevel(int level)
{
    AEO_ASSERT(level >= 0 && level < table().size(), "bad thermal cap level %d",
               level);
    thermal_cap_level_ = level;
    // Re-clamp the current operating point under the new ceiling.
    RequestLevel(cluster_->level());
}

void
CpufreqPolicy::RequestFrequencyAtOrAbove(Gigahertz freq)
{
    RequestLevel(table().LevelAtOrAbove(freq));
}

void
CpufreqPolicy::SetLevelLimits(int min_level, int max_level)
{
    AEO_ASSERT(min_level >= 0 && max_level < table().size() && min_level <= max_level,
               "bad level limits [%d, %d]", min_level, max_level);
    min_level_limit_ = min_level;
    max_level_limit_ = max_level;
    // Re-clamp the current operating point into the new limits.
    RequestLevel(cluster_->level());
}

void
CpufreqPolicy::RegisterSysfsFiles()
{
    const auto khz_of = [](Gigahertz f) {
        return StrFormat("%lld", static_cast<long long>(f.kilohertz() + 0.5));
    };

    sysfs_->Register(sysfs_root_ + "/scaling_governor",
                     SysfsFile{
                         [this] { return governor_name(); },
                         [this](const std::string& value) { return SetGovernor(Trim(value)); },
                     });

    sysfs_->Register(sysfs_root_ + "/scaling_available_governors",
                     SysfsFile{[this] { return AvailableGovernors(); }, nullptr});

    sysfs_->Register(sysfs_root_ + "/scaling_cur_freq",
                     SysfsFile{
                         [this, khz_of] { return khz_of(cluster_->frequency()); },
                         nullptr,
                     });

    sysfs_->Register(
        sysfs_root_ + "/scaling_available_frequencies",
        SysfsFile{[this, khz_of] {
                      std::vector<std::string> fields;
                      for (int level = 0; level < table().size(); ++level) {
                          fields.push_back(khz_of(table().FrequencyAt(level)));
                      }
                      return Join(fields, " ");
                  },
                  nullptr});

    const auto parse_khz = [](const std::string& value, Gigahertz* out) {
        long long khz = 0;
        if (!ParseInt64(value, &khz) || khz <= 0) {
            return false;
        }
        *out = Gigahertz(static_cast<double>(khz) / 1e6);
        return true;
    };

    sysfs_->Register(
        sysfs_root_ + "/scaling_min_freq",
        SysfsFile{[this, khz_of] { return khz_of(table().FrequencyAt(min_level_limit_)); },
                  [this, parse_khz](const std::string& value) {
                      Gigahertz freq;
                      if (!parse_khz(value, &freq)) {
                          return false;
                      }
                      const int level = table().ClosestLevel(freq);
                      if (level > max_level_limit_) {
                          return false;
                      }
                      SetLevelLimits(level, max_level_limit_);
                      return true;
                  }});

    sysfs_->Register(
        sysfs_root_ + "/scaling_max_freq",
        // Reads report the *effective* limit — msm_thermal's clamp shows
        // through here, which is how a watchful userspace can detect it.
        SysfsFile{[this, khz_of] { return khz_of(table().FrequencyAt(effective_max_level())); },
                  [this, parse_khz](const std::string& value) {
                      Gigahertz freq;
                      if (!parse_khz(value, &freq)) {
                          return false;
                      }
                      const int level = table().ClosestLevel(freq);
                      if (level < min_level_limit_) {
                          return false;
                      }
                      SetLevelLimits(min_level_limit_, level);
                      return true;
                  }});

    sysfs_->Register(sysfs_root_ + "/scaling_setspeed",
                     SysfsFile{
                         [this, khz_of] {
                             return governor_name() == "userspace"
                                        ? khz_of(cluster_->frequency())
                                        : std::string("<unsupported>");
                         },
                         [this, parse_khz](const std::string& value) {
                             if (!governor_) {
                                 return false;
                             }
                             Gigahertz freq;
                             if (!parse_khz(value, &freq)) {
                                 return false;
                             }
                             return governor_->SetSpeed(freq);
                         },
                     });
}

}  // namespace aeo
