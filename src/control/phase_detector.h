/**
 * @file
 * Online application-phase detection — the §V-B problem statement:
 *
 *   "how do we define and identify application phases? ... Phase
 *    prediction, as proposed in [23], might help, but is only one step
 *    towards addressing these problems."
 *
 * The detector consumes the controller's own per-cycle GIPS measurements
 * (no extra instrumentation) and maintains K online clusters of measured
 * rates. A cycle is assigned to the nearest cluster within a relative
 * tolerance; otherwise it seeds or replaces a cluster. Stable cluster ids
 * give a controller the hook to keep per-phase targets or tables (the
 * paper's [23] keeps per-phase history tables the same way).
 */
#ifndef AEO_CONTROL_PHASE_DETECTOR_H_
#define AEO_CONTROL_PHASE_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aeo {

/** Tunables of the phase detector. */
struct PhaseDetectorParams {
    /** Maximum number of tracked phases. */
    int max_phases = 4;
    /** A sample within this relative distance joins an existing phase. */
    double match_tolerance = 0.25;
    /** EWMA weight of a new sample on its phase centroid. */
    double centroid_alpha = 0.2;
    /** Evict the least-recently-seen phase when full and nothing matches. */
    bool evict_stale = true;
};

/** One tracked phase. */
struct PhaseInfo {
    /** Centroid of the phase's measured rate. */
    double centroid = 0.0;
    /** Samples assigned so far. */
    uint64_t hits = 0;
    /** Index of the last sample assigned. */
    uint64_t last_seen = 0;
};

/** Online clustering of a one-dimensional measurement stream. */
class PhaseDetector {
  public:
    explicit PhaseDetector(PhaseDetectorParams params = {});

    /**
     * Classifies @p measurement, updating the matched (or newly created)
     * phase.
     *
     * @return the phase id (stable across samples while the phase lives).
     */
    int Classify(double measurement);

    /** Currently tracked phases. */
    const std::vector<PhaseInfo>& phases() const { return phases_; }

    /** Id of the most recently matched phase (-1 before any sample). */
    int current_phase() const { return current_; }

    /** Number of phase *switches* observed (assignments differing from the
     * previous sample's phase). */
    uint64_t switch_count() const { return switches_; }

    /** Total samples classified. */
    uint64_t sample_count() const { return samples_; }

  private:
    PhaseDetectorParams params_;
    std::vector<PhaseInfo> phases_;
    int current_ = -1;
    uint64_t switches_ = 0;
    uint64_t samples_ = 0;
};

}  // namespace aeo

#endif  // AEO_CONTROL_PHASE_DETECTOR_H_
