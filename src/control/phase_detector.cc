#include "control/phase_detector.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace aeo {

PhaseDetector::PhaseDetector(PhaseDetectorParams params) : params_(params)
{
    AEO_ASSERT(params_.max_phases >= 1, "need at least one phase slot");
    AEO_ASSERT(params_.match_tolerance > 0.0, "tolerance must be positive");
    AEO_ASSERT(params_.centroid_alpha > 0.0 && params_.centroid_alpha <= 1.0,
               "alpha out of (0, 1]");
}

int
PhaseDetector::Classify(double measurement)
{
    AEO_ASSERT(measurement >= 0.0, "negative measurement");
    ++samples_;

    // Find the nearest phase by relative distance.
    int best = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < phases_.size(); ++i) {
        const double scale = std::max(phases_[i].centroid, 1e-12);
        const double dist = std::fabs(measurement - phases_[i].centroid) / scale;
        if (dist < best_dist) {
            best = static_cast<int>(i);
            best_dist = dist;
        }
    }

    if (best >= 0 && best_dist <= params_.match_tolerance) {
        PhaseInfo& phase = phases_[static_cast<size_t>(best)];
        phase.centroid += params_.centroid_alpha * (measurement - phase.centroid);
        ++phase.hits;
        phase.last_seen = samples_;
    } else if (static_cast<int>(phases_.size()) < params_.max_phases) {
        best = static_cast<int>(phases_.size());
        phases_.push_back(PhaseInfo{measurement, 1, samples_});
    } else if (params_.evict_stale) {
        // Replace the least-recently-seen phase.
        size_t stalest = 0;
        for (size_t i = 1; i < phases_.size(); ++i) {
            if (phases_[i].last_seen < phases_[stalest].last_seen) {
                stalest = i;
            }
        }
        phases_[stalest] = PhaseInfo{measurement, 1, samples_};
        best = static_cast<int>(stalest);
    }
    // else: forced into the nearest phase despite the distance.

    if (best != current_ && current_ != -1) {
        ++switches_;
    }
    current_ = best;
    return best;
}

}  // namespace aeo
