/**
 * @file
 * Scalar Kalman filter for base-speed estimation (§III-B3).
 *
 * Following POET [6], the application's base speed b is modelled as a
 * random walk observed through y_n = s_{n−1} · b_n + v: the measured GIPS
 * equals the applied speedup times the (drifting) base speed plus
 * measurement noise. The filter supports a time-varying observation
 * coefficient h = s_{n−1}.
 */
#ifndef AEO_CONTROL_KALMAN_FILTER_H_
#define AEO_CONTROL_KALMAN_FILTER_H_

namespace aeo {

/** Scalar random-walk Kalman filter with time-varying observation gain. */
class ScalarKalmanFilter {
  public:
    /**
     * @param initial_estimate  x̂_0.
     * @param initial_variance  P_0.
     * @param process_variance  Q: per-step random-walk variance.
     * @param measurement_variance R: observation noise variance.
     */
    ScalarKalmanFilter(double initial_estimate, double initial_variance,
                       double process_variance, double measurement_variance);

    /**
     * One predict+update step with observation z = h·x + v.
     *
     * @param z Measured value.
     * @param h Observation coefficient (s_{n−1} in the controller).
     * @return the posterior estimate x̂_n.
     */
    double Update(double z, double h);

    /** Current estimate. */
    double estimate() const { return estimate_; }

    /** Current estimate variance. */
    double variance() const { return variance_; }

    /** Re-initializes the filter state. */
    void Reset(double estimate, double variance);

  private:
    double estimate_;
    double variance_;
    double process_variance_;
    double measurement_variance_;
};

}  // namespace aeo

#endif  // AEO_CONTROL_KALMAN_FILTER_H_
