#include "control/integral_controller.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace aeo {

AdaptiveIntegralController::AdaptiveIntegralController(double initial_output,
                                                       double min_output,
                                                       double max_output)
    : output_(initial_output), min_output_(min_output), max_output_(max_output)
{
    AEO_ASSERT(min_output_ <= max_output_, "bad output range [%f, %f]", min_output_,
               max_output_);
    output_ = Clamp(output_, min_output_, max_output_);
    state_ = output_;
}

double
AdaptiveIntegralController::Step(double error, double gain_denominator)
{
    AEO_ASSERT(gain_denominator > 0.0, "adaptive gain denominator must be positive, got %f",
               gain_denominator);
    state_ = Clamp(state_ + error / gain_denominator,
                   min_output_ - surplus_band_, max_output_);
    const double desired = Clamp(state_, min_output_, max_output_);
    output_ = std::max(desired, output_ - max_step_down_);
    return output_;
}

void
AdaptiveIntegralController::set_max_step_down(double max_step_down)
{
    AEO_ASSERT(max_step_down > 0.0, "downward slew limit must be positive, got %f",
               max_step_down);
    max_step_down_ = max_step_down;
}

void
AdaptiveIntegralController::set_surplus_band(double band)
{
    AEO_ASSERT(band >= 0.0, "surplus band must be non-negative, got %f", band);
    surplus_band_ = band;
    state_ = Clamp(state_, min_output_ - surplus_band_, max_output_);
}

void
AdaptiveIntegralController::SetOutputRange(double min_output, double max_output)
{
    AEO_ASSERT(min_output <= max_output, "bad output range [%f, %f]", min_output,
               max_output);
    min_output_ = min_output;
    max_output_ = max_output;
    state_ = Clamp(state_, min_output_ - surplus_band_, max_output_);
    output_ = Clamp(state_, min_output_, max_output_);
}

void
AdaptiveIntegralController::Reset(double output)
{
    output_ = Clamp(output, min_output_, max_output_);
    state_ = output_;
}

}  // namespace aeo
