#include "control/integral_controller.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace aeo {

AdaptiveIntegralController::AdaptiveIntegralController(double initial_output,
                                                       double min_output,
                                                       double max_output)
    : output_(initial_output), min_output_(min_output), max_output_(max_output)
{
    AEO_ASSERT(min_output_ <= max_output_, "bad output range [%f, %f]", min_output_,
               max_output_);
    output_ = Clamp(output_, min_output_, max_output_);
}

double
AdaptiveIntegralController::Step(double error, double gain_denominator)
{
    AEO_ASSERT(gain_denominator > 0.0, "adaptive gain denominator must be positive, got %f",
               gain_denominator);
    output_ = Clamp(output_ + error / gain_denominator, min_output_, max_output_);
    return output_;
}

void
AdaptiveIntegralController::SetOutputRange(double min_output, double max_output)
{
    AEO_ASSERT(min_output <= max_output, "bad output range [%f, %f]", min_output,
               max_output);
    min_output_ = min_output;
    max_output_ = max_output;
    output_ = Clamp(output_, min_output_, max_output_);
}

void
AdaptiveIntegralController::Reset(double output)
{
    output_ = Clamp(output, min_output_, max_output_);
}

}  // namespace aeo
