/**
 * @file
 * The adaptive-gain integral performance regulator (§III-B3, equations
 * (2)–(3)):
 *
 *     e_n = r − y_n
 *     s_n = s_{n−1} + e_{n−1} / b̂_{n−1}
 *
 * The integrator gain 1/b̂ adapts to the application's estimated base speed,
 * which is what lets one controller structure track applications whose base
 * speeds differ by almost 4× (AngryBirds 0.129 GIPS vs VidCon 0.471 GIPS).
 * Stability analysis for this family of controllers is given in Almoosa et
 * al., ACC 2012 [14].
 */
#ifndef AEO_CONTROL_INTEGRAL_CONTROLLER_H_
#define AEO_CONTROL_INTEGRAL_CONTROLLER_H_

namespace aeo {

/** Integrator with an adaptive gain and output clamping. */
class AdaptiveIntegralController {
  public:
    /**
     * @param initial_output Starting integrator state (s_0).
     * @param min_output     Lower clamp (lowest achievable speedup).
     * @param max_output     Upper clamp (highest achievable speedup).
     */
    AdaptiveIntegralController(double initial_output, double min_output,
                               double max_output);

    /**
     * Advances the integrator: s ← clamp(s + error / gain_denominator).
     *
     * @param error             e_{n−1} = r − y_{n−1}.
     * @param gain_denominator  b̂_{n−1}, the current base-speed estimate.
     * @return the new output s_n.
     */
    double Step(double error, double gain_denominator);

    /** Current output without stepping. */
    double output() const { return output_; }

    /** Updates the clamp range (e.g. after a profile-table change). */
    void SetOutputRange(double min_output, double max_output);

    /** Resets the integrator state. */
    void Reset(double output);

  private:
    double output_;
    double min_output_;
    double max_output_;
};

}  // namespace aeo

#endif  // AEO_CONTROL_INTEGRAL_CONTROLLER_H_
