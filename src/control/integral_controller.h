/**
 * @file
 * The adaptive-gain integral performance regulator (§III-B3, equations
 * (2)–(3)):
 *
 *     e_n = r − y_n
 *     s_n = s_{n−1} + e_{n−1} / b̂_{n−1}
 *
 * The integrator gain 1/b̂ adapts to the application's estimated base speed,
 * which is what lets one controller structure track applications whose base
 * speeds differ by almost 4× (AngryBirds 0.129 GIPS vs VidCon 0.471 GIPS).
 * Stability analysis for this family of controllers is given in Almoosa et
 * al., ACC 2012 [14].
 */
#ifndef AEO_CONTROL_INTEGRAL_CONTROLLER_H_
#define AEO_CONTROL_INTEGRAL_CONTROLLER_H_

namespace aeo {

/** Sentinel "no slew limit" step size (see set_max_step_down). */
inline constexpr double kUnlimitedStep = 1e30;

/** Integrator with an adaptive gain and output clamping. */
class AdaptiveIntegralController {
  public:
    /**
     * @param initial_output Starting integrator state (s_0).
     * @param min_output     Lower clamp (lowest achievable speedup).
     * @param max_output     Upper clamp (highest achievable speedup).
     */
    AdaptiveIntegralController(double initial_output, double min_output,
                               double max_output);

    /**
     * Advances the integrator: s ← clamp(s + error / gain_denominator).
     *
     * @param error             e_{n−1} = r − y_{n−1}.
     * @param gain_denominator  b̂_{n−1}, the current base-speed estimate.
     * @return the new output s_n.
     */
    double Step(double error, double gain_denominator);

    /** Current output without stepping. */
    double output() const { return output_; }

    /**
     * Enables surplus banking: the integrator state may sink up to @p band
     * below the output floor (the output itself stays clamped). A burst of
     * performance far above target — a phase-heterogeneous application's
     * demand spike — then leaves a bounded credit that the regulator spends
     * as extra low-speedup cycles instead of being truncated by the clamp
     * the moment the burst ends. The band is one-sided: the state never
     * exceeds the output ceiling, so an infeasible target accumulates no
     * performance debt beyond "run at maximum" (the paper's safe mode).
     * Zero (the default) reproduces the plain clamped integrator of
     * equations (2)–(3) exactly.
     */
    void set_surplus_band(double band);

    /** Banked surplus: how far the state currently sits below the output
     * floor, in output units (0 when no credit is banked). */
    double banked_surplus() const { return output_ - state_; }

    /**
     * Limits how far the output may FALL in one step (ascent stays
     * unlimited — tracking never waits to push performance up). Without a
     * limit, one burst cycle swings the output to the floor and the banked
     * surplus drains at the floor's large per-cycle error — the least
     * efficient row to spend it on. Slewed, the output walks down the
     * frontier and the credit is spent dwelling near the knee. Infinity
     * (the default) reproduces the unslewed integrator exactly.
     */
    void set_max_step_down(double max_step_down);

    /** Updates the clamp range (e.g. after a profile-table change). */
    void SetOutputRange(double min_output, double max_output);

    /** Resets the integrator state. */
    void Reset(double output);

  private:
    double output_;
    /** Raw integrator state: equals output_ except when surplus is banked,
     * when it sits in [min_output_ − surplus_band_, min_output_). */
    double state_;
    double min_output_;
    double max_output_;
    double surplus_band_ = 0.0;
    double max_step_down_ = kUnlimitedStep;
};

}  // namespace aeo

#endif  // AEO_CONTROL_INTEGRAL_CONTROLLER_H_
