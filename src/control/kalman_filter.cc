#include "control/kalman_filter.h"

#include "common/logging.h"

namespace aeo {

ScalarKalmanFilter::ScalarKalmanFilter(double initial_estimate, double initial_variance,
                                       double process_variance,
                                       double measurement_variance)
    : estimate_(initial_estimate),
      variance_(initial_variance),
      process_variance_(process_variance),
      measurement_variance_(measurement_variance)
{
    AEO_ASSERT(initial_variance >= 0.0, "negative initial variance");
    AEO_ASSERT(process_variance >= 0.0, "negative process variance");
    AEO_ASSERT(measurement_variance > 0.0, "measurement variance must be positive");
}

double
ScalarKalmanFilter::Update(double z, double h)
{
    // Predict: random walk leaves the estimate, inflates the variance.
    variance_ += process_variance_;

    // Update with observation z = h·x + v.
    const double innovation = z - h * estimate_;
    const double s = h * h * variance_ + measurement_variance_;
    const double gain = variance_ * h / s;
    estimate_ += gain * innovation;
    variance_ *= (1.0 - gain * h);
    return estimate_;
}

void
ScalarKalmanFilter::Reset(double estimate, double variance)
{
    AEO_ASSERT(variance >= 0.0, "negative variance");
    estimate_ = estimate;
    variance_ = variance;
}

}  // namespace aeo
