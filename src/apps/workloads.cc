#include "apps/workloads.h"

#include <limits>

namespace aeo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

WorkloadDemand
Demand(double ipc, double parallelism, double bpi, double gips_cap = kInf)
{
    WorkloadDemand demand;
    demand.ipc = ipc;
    demand.parallelism = parallelism;
    demand.mem_bytes_per_instr = bpi;
    demand.demand_gips = gips_cap;
    return demand;
}

}  // namespace

AppSpec
MakeVidConSpec()
{
    // Self-paced transcode: ipc·par = 1.65 gives the paper's base speed
    // R(0.3 GHz, 762 MBps) ≈ 0.47 GIPS. Between GOP-sized chunks the
    // transcoder stalls briefly on storage I/O; during those dips the
    // interactive governor down-ramps and then pays ramp latency, which is
    // why the paper's default, despite ~60 % of time at level 18, only
    // achieves level-13-class throughput — the controller matches it at
    // lower levels with ~25 % less energy.
    AppSpec spec;
    spec.name = "VidCon";
    spec.loop = false;
    spec.jitter_rel = 0.04;
    constexpr int kChunks = 30;
    constexpr double kTotalWorkGi = 148.0;
    for (int i = 0; i < kChunks; ++i) {
        AppPhase chunk;
        chunk.name = "transcode";
        chunk.kind = PhaseKind::kWork;
        chunk.demand = Demand(0.55, 3.0, 0.10);
        chunk.work_gi = kTotalWorkGi / kChunks;
        chunk.component_mw = 150.0;  // storage I/O + codec front-end
        spec.phases.push_back(chunk);
    }
    return spec;
}

AppSpec
MakeMobileBenchSpec()
{
    // 24 sites: a parallel page-load burst followed by 1.5 s of automatic
    // zoom/scroll rendering. Execution time is the performance metric
    // (deadline critical). Bandwidth sensitivity is mild (~7 % per §V-A);
    // the bus cost of the default governors comes from prefetch traffic
    // keeping cpubw_hwmon provisioned high through the viewing pauses.
    AppSpec spec;
    spec.name = "MobileBench";
    spec.loop = false;
    spec.jitter_rel = 0.10;
    constexpr int kPages = 24;
    for (int i = 0; i < kPages; ++i) {
        AppPhase load;
        load.name = "page-load";
        load.kind = PhaseKind::kWork;
        load.demand = Demand(0.80, 3.0, 0.45);
        load.work_gi = 1.15;
        load.component_mw = 260.0;  // radio + compositor during load
        spec.phases.push_back(load);

        // Automatic zoom/scroll renders at 60 fps; frames are light enough
        // for low-mid frequencies but keep the renderer ticking.
        AppPhase view;
        view.name = "zoom-scroll";
        view.kind = PhaseKind::kFrame;
        view.demand = Demand(0.70, 2.0, 0.30);
        view.duration = SimTime::FromSecondsF(1.5);
        view.frame_work_gi = 0.45 / 60.0;
        view.frame_period = SimTime::Micros(16667);
        view.slack_demand = Demand(0.70, 1.0, 0.20, 0.001);
        view.component_mw = 120.0;
        spec.phases.push_back(view);
    }
    return spec;
}

AppSpec
MakeAngryBirdsSpec()
{
    // 60 fps deadline loop. ipc·par = 0.43 reproduces the paper's base
    // speed of 0.129 GIPS at (0.3 GHz, 762 MBps); the per-frame quantum
    // makes GIPS saturate at ≈0.237 (speedup 1.837, Table I row 31) by CPU
    // level 5, matching "performance does not improve beyond frequency 5".
    // Every ~40 s an advertisement loads between levels: a bus-heavy burst
    // drawing an extra ~500 mW (§V-A footnote).
    // Frame-to-frame work jitter is what produces the paper's *gradual*
    // speedup saturation: mean capacity crosses mean demand near level 3,
    // but heavy frames keep benefiting from frequency up to level 5.
    AppSpec spec;
    spec.name = "AngryBirds";
    spec.loop = true;
    spec.jitter_rel = 0.25;

    // ipc·par = 0.5675: raw capacity at (0.3 GHz, 762 MBps) is ~0.156 GIPS,
    // but overrunning frames re-synchronize to the vsync grid, and the
    // measured base speed lands at the paper's 0.129 GIPS. The same vsync
    // quantization produces the sub-linear speedup curve (1.837 at level 5).
    AppPhase gameplay;
    gameplay.name = "gameplay";
    gameplay.kind = PhaseKind::kFrame;
    gameplay.demand = Demand(0.227, 2.5, 0.02);
    gameplay.duration = SimTime::FromSeconds(38);
    gameplay.frame_work_gi = 0.2261 / 60.0;  // 60 fps target
    gameplay.frame_period = SimTime::Micros(16667);
    gameplay.slack_demand = Demand(0.227, 1.0, 0.02, 0.012);
    gameplay.component_mw = 330.0;  // GPU render
    spec.phases.push_back(gameplay);

    AppPhase ad;
    ad.name = "advertisement";
    ad.kind = PhaseKind::kWork;
    ad.demand = Demand(0.40, 2.0, 1.2);
    ad.work_gi = 0.9;
    ad.component_mw = 830.0;  // GPU + radio fetching the creative
    spec.phases.push_back(ad);
    return spec;
}

AppSpec
MakeWeChatSpec()
{
    // 30 fps video-conference loop: camera capture + encode + decode.
    // The mean frame (0.28 GIPS-equivalent) just fits at level 3 (capacity
    // ≈0.29 GIPS with ipc·par = 0.45), so the paper's controller can spend
    // >50 % of its time there; heavy frames (σ = 0.2 work jitter) keep
    // benefiting from frequency up to level 7 — "no significant improvement
    // beyond frequency 7". The camera pipeline fails below level 3 (§V-A),
    // which the scenario encodes by excluding levels 1–2 from the profile.
    // A call alternates quiet (talking-head, low-motion: cheap frames) and
    // active (motion: heavy frames) periods. The default governor down-ramps
    // during quiet stretches and then drops frames at motion onsets while it
    // ramps back up, so its delivered GIPS sits below the saturated ideal —
    // the slack the controller exploits from level 3.
    AppSpec spec;
    spec.name = "WeChat";
    spec.loop = true;
    spec.jitter_rel = 0.20;

    AppPhase quiet;
    quiet.name = "call-quiet";
    quiet.kind = PhaseKind::kFrame;
    quiet.demand = Demand(0.225, 2.0, 0.08);
    quiet.duration = SimTime::FromSecondsF(2.2);
    quiet.frame_work_gi = 0.20 / 30.0;
    quiet.frame_period = SimTime::Micros(33333);
    quiet.slack_demand = Demand(0.225, 1.0, 0.08, 0.0005);
    quiet.component_mw = 760.0;  // camera + codec + radio uplink
    spec.phases.push_back(quiet);

    AppPhase active = quiet;
    active.name = "call-active";
    active.duration = SimTime::FromSecondsF(1.8);
    active.frame_work_gi = 0.30 / 30.0;
    spec.phases.push_back(active);
    return spec;
}

AppSpec
MakeMxPlayerSpec()
{
    // Hardware decoder does the heavy lifting; the CPU only runs demux,
    // audio and UI (ipc·par = 0.135, ~0.1 GIPS per frame quantum). Frames
    // overrun below level 5 — the paper's "video does not play smoothly
    // for frequencies 1–4" — and the decoder block draws ~420 mW.
    // Hardware-decoded frames hit the CPU with a very regular demux/audio
    // cadence (jitter ~2%) — the CPU-side work is bookkeeping, not codec.
    AppSpec spec;
    spec.name = "MXPlayer";
    spec.loop = true;
    spec.jitter_rel = 0.02;

    AppPhase playback;
    playback.name = "playback";
    playback.kind = PhaseKind::kFrame;
    playback.demand = Demand(0.135, 1.0, 0.35);
    playback.duration = SimTime::FromSeconds(10);
    playback.frame_work_gi = 0.1 / 30.0;
    playback.frame_period = SimTime::Micros(33333);
    playback.slack_demand = Demand(0.135, 1.0, 0.35, 0.0005);
    playback.component_mw = 420.0;  // hardware decoder + display pipeline
    spec.phases.push_back(playback);
    return spec;
}

AppSpec
MakeSpotifySpec()
{
    // Spotify decodes *ahead* into a PCM buffer: every 400 ms a self-paced
    // decode chunk (0.024 Gi ≈ 400 ms of audio) saturates its core briefly
    // and then the app sleeps. Even the lowest frequency keeps the buffer
    // fed ("audio quality does not degrade at the lowest frequency"), but
    // the chunk bursts are exactly what bait the interactive governor up to
    // hispeed over and over (Fig. 4(f): 27 % of time at level 10). A song
    // change every 20 s adds a radio + decode burst.
    // Audio decode is extremely regular — fixed-rate frames through a fixed
    // codec — so per-chunk jitter is tiny. (This regularity is also why the
    // controller can hold Spotify within 0.4 % of its target.)
    AppSpec spec;
    spec.name = "Spotify";
    spec.loop = true;
    spec.jitter_rel = 0.02;

    // The buffer cycle is paced by *audio time*: 2 s of audio per chunk,
    // consumed in real time, so the cycle is 2 s wall-clock no matter how
    // fast the chunk decodes — average GIPS is nearly configuration-
    // independent, which is why the paper's controller can sit at the
    // lowest frequency with a GIPS loss of only 0.4 %.
    AppPhase playback;
    playback.name = "decode-ahead";
    playback.kind = PhaseKind::kFrame;
    playback.demand = Demand(0.50, 1.5, 0.50);
    playback.duration = SimTime::FromSeconds(18);
    playback.frame_work_gi = 0.024;
    playback.frame_period = SimTime::Millis(400);
    playback.slack_demand = Demand(0.50, 1.0, 0.25, 0.0005);
    playback.component_mw = 140.0;  // audio DSP + WiFi idle listen
    spec.phases.push_back(playback);

    // The song change is paced by its ~1.2 s crossfade/UI animation — the
    // decode+prefetch burst inside it finishes early on fast configurations
    // but the transition takes the same wall time.
    AppPhase song_change;
    song_change.name = "song-change";
    song_change.kind = PhaseKind::kFrame;
    song_change.demand = Demand(0.50, 2.0, 0.5);
    song_change.duration = SimTime::FromSecondsF(1.2);
    song_change.frame_work_gi = 0.03;
    song_change.frame_period = SimTime::FromSecondsF(1.2);
    song_change.slack_demand = Demand(0.50, 1.0, 0.25, 0.0005);
    song_change.component_mw = 430.0;  // radio burst + UI redraw
    spec.phases.push_back(song_change);

    AppPhase tail = playback;
    tail.name = "decode-tail";
    tail.duration = SimTime::FromSeconds(2);
    spec.phases.push_back(tail);
    return spec;
}

AppSpec
MakeEbookSpec()
{
    // Reading with no interaction: near-idle with a periodic typesetting /
    // redraw burst. Under the default governors those bursts are what put
    // >10 % of time at the top frequency in Fig. 1.
    AppSpec spec;
    spec.name = "eBook";
    spec.loop = true;
    spec.jitter_rel = 0.15;

    // Redraw/typeset ticks are paced by the 1 s UI timer, not by compute.
    AppPhase reading;
    reading.name = "reading";
    reading.kind = PhaseKind::kFrame;
    reading.demand = Demand(0.45, 1.5, 0.30);
    reading.duration = SimTime::FromSecondsF(5.5);
    reading.frame_work_gi = 0.03;
    reading.frame_period = SimTime::FromSeconds(1);
    reading.slack_demand = Demand(0.45, 1.0, 0.20, 0.001);
    reading.component_mw = 40.0;
    spec.phases.push_back(reading);

    // Every ~6 s the reader typesets/prefetches the next page: a longer
    // burst that rides the governor through hispeed toward the top levels —
    // the >10 % at level 18 of Fig. 1.
    AppPhase typeset;
    typeset.name = "page-typeset";
    typeset.kind = PhaseKind::kWork;
    typeset.demand = Demand(0.60, 2.0, 0.35);
    typeset.work_gi = 1.1;
    typeset.component_mw = 70.0;
    spec.phases.push_back(typeset);
    return spec;
}

}  // namespace aeo
