#include "apps/app_model.h"

#include <cmath>

#include "common/logging.h"

namespace aeo {

namespace {
/** Work-completion tolerance, in giga-instructions (~1 instruction). */
constexpr double kWorkEpsilon = 1e-9;
}  // namespace

AppModel::AppModel(AppSpec spec, uint64_t seed) : spec_(std::move(spec)), rng_(seed)
{
    AEO_ASSERT(!spec_.phases.empty(), "app '%s' has no phases", spec_.name.c_str());
    for (const AppPhase& p : spec_.phases) {
        switch (p.kind) {
          case PhaseKind::kTimed:
            AEO_ASSERT(p.duration > SimTime::Zero(), "timed phase '%s' needs a duration",
                       p.name.c_str());
            break;
          case PhaseKind::kWork:
            AEO_ASSERT(p.work_gi > 0.0, "work phase '%s' needs work", p.name.c_str());
            break;
          case PhaseKind::kFrame:
            AEO_ASSERT(p.duration > SimTime::Zero(), "frame phase '%s' needs a duration",
                       p.name.c_str());
            AEO_ASSERT(p.frame_work_gi > 0.0, "frame phase '%s' needs frame work",
                       p.name.c_str());
            AEO_ASSERT(p.frame_period > SimTime::Zero(),
                       "frame phase '%s' needs a period", p.name.c_str());
            break;
        }
    }
    EnterPhase(0);
}

const AppPhase&
AppModel::phase() const
{
    AEO_ASSERT(!finished_, "no current phase after finishing");
    return spec_.phases[phase_index_];
}

double
AppModel::JitterDraw()
{
    if (spec_.jitter_rel <= 0.0) {
        return 1.0;
    }
    // Log-normal keeps multipliers positive with median 1.
    return std::exp(rng_.Gaussian(0.0, spec_.jitter_rel));
}

void
AppModel::EnterPhase(size_t index)
{
    phase_index_ = index;
    phase_elapsed_ = SimTime::Zero();
    phase_work_done_ = 0.0;
    phase_jitter_ = JitterDraw();

    const AppPhase& p = phase();
    active_demand_ = p.demand;
    if (p.kind == PhaseKind::kWork) {
        // Jitter scales the quantum; demand magnitude jitters for paced work.
        active_demand_.demand_gips = p.demand.demand_gips * phase_jitter_;
    } else if (p.kind == PhaseKind::kTimed) {
        active_demand_.demand_gips = p.demand.demand_gips * phase_jitter_;
    } else {
        StartFrame();
    }
}

void
AppModel::NextPhase()
{
    if (phase_index_ + 1 < spec_.phases.size()) {
        EnterPhase(phase_index_ + 1);
        return;
    }
    if (spec_.loop) {
        EnterPhase(0);
        return;
    }
    finished_ = true;
}

void
AppModel::StartFrame()
{
    const AppPhase& p = phase();
    frame_state_ = FrameState::kComputing;
    frame_work_remaining_ = p.frame_work_gi * JitterDraw();
    frame_slack_remaining_ = SimTime::Zero();
    active_demand_ = p.demand;
}

void
AppModel::Advance(SimTime dt, double executed_gi)
{
    AEO_ASSERT(dt >= SimTime::Zero(), "negative advance");
    AEO_ASSERT(executed_gi >= -kWorkEpsilon, "negative executed work");
    if (finished_) {
        return;
    }
    total_executed_gi_ += executed_gi;
    total_elapsed_ += dt;
    phase_elapsed_ += dt;

    const AppPhase& p = phase();
    switch (p.kind) {
      case PhaseKind::kTimed:
        if (phase_elapsed_ >= p.duration) {
            NextPhase();
        }
        break;

      case PhaseKind::kWork:
        phase_work_done_ += executed_gi;
        if (phase_work_done_ + kWorkEpsilon >= p.work_gi * phase_jitter_) {
            NextPhase();
        }
        break;

      case PhaseKind::kFrame:
        if (phase_elapsed_ >= p.duration) {
            NextPhase();
            break;
        }
        if (frame_state_ == FrameState::kComputing) {
            frame_work_remaining_ -= executed_gi;
            if (frame_work_remaining_ <= kWorkEpsilon) {
                // Frame compute finished: idle until the period boundary.
                // Overrunning frames (slow hardware) skip the slack —
                // the next frame starts immediately, as when a game drops
                // below its target frame rate.
                const double period_s = p.frame_period.seconds();
                const double into_period =
                    std::fmod(phase_elapsed_.seconds(), period_s);
                const double slack_s = period_s - into_period;
                if (slack_s > 1e-6 && slack_s < period_s) {
                    frame_state_ = FrameState::kSlack;
                    frame_slack_remaining_ = SimTime::FromSecondsF(slack_s);
                    active_demand_ = p.slack_demand;
                } else {
                    StartFrame();
                }
            }
        } else {
            frame_slack_remaining_ -= dt;
            if (frame_slack_remaining_ <= SimTime::Zero()) {
                StartFrame();
            }
        }
        break;
    }
}

const WorkloadDemand&
AppModel::CurrentDemand() const
{
    static const WorkloadDemand kIdle{1.0, 1.0, 0.0, 0.0};
    if (finished_) {
        return kIdle;
    }
    return active_demand_;
}

double
AppModel::CurrentComponentPower() const
{
    if (finished_) {
        return 0.0;
    }
    return phase().component_mw;
}

double
AppModel::CurrentGpuUnitsPerGi() const
{
    if (finished_) {
        return 0.0;
    }
    return phase().gpu_units_per_gi;
}

std::string
AppModel::CurrentPhaseName() const
{
    if (finished_) {
        return "done";
    }
    return phase().name;
}

std::optional<SimTime>
AppModel::TimeToBoundary(double gips) const
{
    if (finished_) {
        return std::nullopt;
    }
    const AppPhase& p = phase();
    const auto time_left = [&]() { return p.duration - phase_elapsed_; };

    switch (p.kind) {
      case PhaseKind::kTimed:
        return time_left();

      case PhaseKind::kWork: {
        if (gips <= 0.0) {
            return std::nullopt;
        }
        const double remaining = p.work_gi * phase_jitter_ - phase_work_done_;
        return SimTime::FromSecondsF(remaining / gips);
      }

      case PhaseKind::kFrame: {
        SimTime sub;
        if (frame_state_ == FrameState::kComputing) {
            if (gips <= 0.0) {
                return time_left();
            }
            sub = SimTime::FromSecondsF(frame_work_remaining_ / gips);
        } else {
            sub = frame_slack_remaining_;
        }
        return std::min(sub, time_left());
      }
    }
    AEO_PANIC("unreachable phase kind");
}

}  // namespace aeo
