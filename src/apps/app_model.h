/**
 * @file
 * Phase-structured application workload models.
 *
 * The paper's six applications are closed-source Android apps; what the
 * controller observes is the load pattern they place on CPU and memory bus.
 * AppModel reproduces those patterns from three phase kinds:
 *
 *  - kTimed:  a fixed wall-time interval of (possibly rate-capped) demand —
 *             steady decode/streaming work;
 *  - kWork:   a fixed quantum of instructions executed as fast as the
 *             hardware allows — page loads, song-change bursts, transcoding
 *             chunks (the app "finishes" when the last work phase drains);
 *  - kFrame:  a deadline loop — per frame, a work quantum followed by idle
 *             slack until the period boundary; when the hardware is too slow
 *             the work spills into the slack and the CPU saturates. This is
 *             what makes games and video calls ramp the interactive governor
 *             and is the source of the speedup saturation the paper reports
 *             ("performance does not improve beyond frequency 5").
 *
 * Demand magnitudes carry per-instance jitter from a seeded RNG so runs are
 * realistic but reproducible.
 */
#ifndef AEO_APPS_APP_MODEL_H_
#define AEO_APPS_APP_MODEL_H_

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/time.h"
#include "soc/execution_engine.h"

namespace aeo {

/** Phase pacing kind; see the file comment. */
enum class PhaseKind {
    kTimed,
    kWork,
    kFrame,
};

/** One phase of an application's execution. */
struct AppPhase {
    std::string name;
    PhaseKind kind = PhaseKind::kTimed;

    /** Demand while actively computing (kWork/kFrame treat it as a burst). */
    WorkloadDemand demand;

    /** Non-CPU component power while in this phase (decoder/radio/etc), mW. */
    double component_mw = 0.0;

    /**
     * GPU render work generated per giga-instruction of application
     * progress, in render-units (1 unit/s of demand loads a 1 MHz GPU
     * fully). 0 = the app does not exercise the GPU model.
     */
    double gpu_units_per_gi = 0.0;

    /** kTimed / kFrame: phase length in wall time. */
    SimTime duration;

    /** kWork: instructions to retire, in units of 1e9. */
    double work_gi = 0.0;

    /** kFrame: work quantum per frame, units of 1e9 instructions. */
    double frame_work_gi = 0.0;

    /** kFrame: frame period (e.g. 16.7 ms for 60 fps). */
    SimTime frame_period;

    /** kFrame: demand during the idle slack part of a frame. */
    WorkloadDemand slack_demand;
};

/** A complete workload description. */
struct AppSpec {
    std::string name;
    std::vector<AppPhase> phases;
    /** Repeat the phase list forever (paced apps); batch apps end instead. */
    bool loop = false;
    /** Relative log-normal jitter applied per phase/frame instance. */
    double jitter_rel = 0.0;
};

/** Runtime state machine walking an AppSpec. */
class AppModel {
  public:
    /**
     * @param spec The workload; copied in.
     * @param seed Seed for the jitter stream.
     */
    AppModel(AppSpec spec, uint64_t seed);

    /** Workload name. */
    const std::string& name() const { return spec_.name; }

    /** True once a non-looping spec has drained all phases. */
    bool Finished() const { return finished_; }

    /** The demand the device should apply right now. */
    const WorkloadDemand& CurrentDemand() const;

    /** Non-CPU component power right now, mW. */
    double CurrentComponentPower() const;

    /** GPU render-units generated per giga-instruction right now. */
    double CurrentGpuUnitsPerGi() const;

    /** Name of the current phase ("done" when finished). */
    std::string CurrentPhaseName() const;

    /**
     * Advances the model over a segment during which @p executed_gi
     * instructions retired in @p dt of wall time. Phase and frame
     * transitions happen here.
     */
    void Advance(SimTime dt, double executed_gi);

    /**
     * Time until the model's demand next changes, assuming the current
     * instruction rate @p gips holds. Returns nullopt when nothing will
     * change (finished, or an unbounded steady phase).
     */
    std::optional<SimTime> TimeToBoundary(double gips) const;

    /** Total instructions retired so far, units of 1e9. */
    double total_executed_gi() const { return total_executed_gi_; }

    /** Total wall time advanced. */
    SimTime total_elapsed() const { return total_elapsed_; }

  private:
    /** Sub-state within a kFrame phase. */
    enum class FrameState { kComputing, kSlack };

    const AppPhase& phase() const;
    void EnterPhase(size_t index);
    void NextPhase();
    void StartFrame();
    double JitterDraw();

    AppSpec spec_;
    Rng rng_;
    size_t phase_index_ = 0;
    bool finished_ = false;

    /** Wall time spent in the current phase. */
    SimTime phase_elapsed_;
    /** kWork: instructions retired in the current phase. */
    double phase_work_done_ = 0.0;
    /** Jitter multiplier for the current phase instance. */
    double phase_jitter_ = 1.0;

    // kFrame state.
    FrameState frame_state_ = FrameState::kComputing;
    double frame_work_remaining_ = 0.0;
    SimTime frame_slack_remaining_;

    /** Jittered demand for the active (sub-)phase. */
    WorkloadDemand active_demand_;

    double total_executed_gi_ = 0.0;
    SimTime total_elapsed_;
};

}  // namespace aeo

#endif  // AEO_APPS_APP_MODEL_H_
