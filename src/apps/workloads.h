/**
 * @file
 * Workload models for the paper's test applications (§IV-C) plus the eBook
 * reader used for the motivating Figure 1.
 *
 * Each factory encodes the published facts about that application:
 *
 *  - VidCon: self-paced FFmpeg transcode, base speed ≈0.471 GIPS at the
 *    lowest configuration, CPU-bound, ~59 s under the default governors.
 *  - MobileBench: alternating page-load bursts and viewing/scrolling, the
 *    most bandwidth-sensitive app (≈7 % speedup from memory bandwidth).
 *  - AngryBirds: a 60 fps deadline loop, base speed ≈0.129 GIPS, GIPS
 *    saturates by CPU level 5, advertisement bursts with heavy bus traffic.
 *  - WeChat video call: a 30 fps encode/decode loop saturating near level 7,
 *    with camera+codec+radio component power; unreliable below level 3.
 *  - MX Player: hardware-decoded playback — tiny CPU demand that still
 *    overruns frames below level 5 ("video does not play smoothly").
 *  - Spotify: a near-idle decode trickle with song-change bursts every 20 s;
 *    audio is fine even at the lowest frequency.
 *  - eBook reader: idle reading with periodic redraw bursts (Fig. 1).
 */
#ifndef AEO_APPS_WORKLOADS_H_
#define AEO_APPS_WORKLOADS_H_

#include "apps/app_model.h"

namespace aeo {

/** FFmpeg-based video converter (batch; finishes when the work drains). */
AppSpec MakeVidConSpec();

/** Browser benchmark: 24 page loads with zoom/scroll between them (batch). */
AppSpec MakeMobileBenchSpec();

/** The 60 fps game loop with periodic advertisement loads (paced). */
AppSpec MakeAngryBirdsSpec();

/** 30 fps video-conference loop (paced). */
AppSpec MakeWeChatSpec();

/** Hardware-decoded HD video playback (paced). */
AppSpec MakeMxPlayerSpec();

/** Audio streaming with song changes every 20 s (paced). */
AppSpec MakeSpotifySpec();

/** eBook reading with no user interaction (paced; Fig. 1 workload). */
AppSpec MakeEbookSpec();

}  // namespace aeo

#endif  // AEO_APPS_WORKLOADS_H_
