/**
 * @file
 * Name-indexed access to the built-in workload specs, for benches, examples
 * and tests that select applications by name.
 */
#ifndef AEO_APPS_APP_REGISTRY_H_
#define AEO_APPS_APP_REGISTRY_H_

#include <string>
#include <vector>

#include "apps/app_model.h"

namespace aeo {

/** Names of all built-in workloads, in the paper's presentation order. */
std::vector<std::string> BuiltinAppNames();

/** Returns the spec for @p name; Fatal() for unknown names. */
AppSpec MakeAppSpecByName(const std::string& name);

/** True if @p name is a built-in workload. */
bool IsBuiltinApp(const std::string& name);

}  // namespace aeo

#endif  // AEO_APPS_APP_REGISTRY_H_
