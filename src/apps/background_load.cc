#include "apps/background_load.h"

#include "common/logging.h"

namespace aeo {

namespace {

/** A tiny always-on residue: kernel threads, sensors, display pipeline. */
AppPhase
IdlePhase(SimTime duration, double gips)
{
    AppPhase phase;
    phase.name = "bg-idle";
    phase.kind = PhaseKind::kTimed;
    phase.demand.ipc = 0.6;
    phase.demand.parallelism = 1.0;
    phase.demand.mem_bytes_per_instr = 0.4;
    phase.demand.demand_gips = gips;
    phase.duration = duration;
    return phase;
}

/** A periodic burst: e-mail sync, streaming refill, widget refresh. */
AppPhase
BurstPhase(const std::string& name, double work_gi, double bpi, double component_mw)
{
    AppPhase phase;
    phase.name = name;
    phase.kind = PhaseKind::kWork;
    phase.demand.ipc = 0.7;
    phase.demand.parallelism = 1.0;
    phase.demand.mem_bytes_per_instr = bpi;
    phase.work_gi = work_gi;
    phase.component_mw = component_mw;
    return phase;
}

}  // namespace

std::string
ToString(BackgroundKind kind)
{
    switch (kind) {
      case BackgroundKind::kNoLoad:
        return "NL";
      case BackgroundKind::kBaseline:
        return "BL";
      case BackgroundKind::kHeavy:
        return "HL";
    }
    AEO_PANIC("unreachable background kind");
}

BackgroundEnv
MakeBackgroundEnv(BackgroundKind kind)
{
    BackgroundEnv env;
    env.kind = kind;
    env.spec.name = "background-" + ToString(kind);
    env.spec.loop = true;
    env.spec.jitter_rel = 0.10;

    switch (kind) {
      case BackgroundKind::kNoLoad:
        // Only the controlled app runs; just the OS residue remains.
        env.spec.phases = {IdlePhase(SimTime::FromSeconds(5), 0.004)};
        env.fg_mem_intensity_multiplier = 0.97;
        env.free_memory_mb = 1024.0;
        env.resident_tasks = 6.7;
        break;

      case BackgroundKind::kBaseline:
        // WiFi on, e-mail sync enabled, Spotify decoding in the background:
        // a steady decode trickle, a streaming refill every ~5 s and an
        // e-mail sync burst roughly once a minute.
        env.spec.phases = {
            IdlePhase(SimTime::FromSecondsF(4.9), 0.022),
            BurstPhase("bg-stream-refill", 0.012, 0.9, 90.0),
            IdlePhase(SimTime::FromSecondsF(24.5), 0.022),
            BurstPhase("bg-stream-refill", 0.012, 0.9, 90.0),
            IdlePhase(SimTime::FromSecondsF(29.5), 0.022),
            BurstPhase("bg-email-sync", 0.10, 0.8, 160.0),
        };
        env.fg_mem_intensity_multiplier = 1.0;
        env.free_memory_mb = 500.0;
        env.resident_tasks = 6.3;
        break;

      case BackgroundKind::kHeavy:
        // Gallery, eBook, Chrome, Facebook, e-mail, MX Player and Spotify
        // minimized: more residue, more frequent syncs, and noticeable
        // memory pressure on the foreground app.
        env.spec.phases = {
            IdlePhase(SimTime::FromSecondsF(4.8), 0.055),
            BurstPhase("bg-stream-refill", 0.018, 1.0, 110.0),
            IdlePhase(SimTime::FromSecondsF(9.6), 0.055),
            BurstPhase("bg-widget-refresh", 0.03, 0.9, 90.0),
            IdlePhase(SimTime::FromSecondsF(14.4), 0.055),
            BurstPhase("bg-email-sync", 0.14, 0.8, 170.0),
        };
        env.fg_mem_intensity_multiplier = 1.22;
        env.free_memory_mb = 134.0;
        env.resident_tasks = 6.6;
        break;
    }
    return env;
}

}  // namespace aeo
