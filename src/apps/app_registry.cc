#include "apps/app_registry.h"

#include <functional>
#include <map>

#include "apps/workloads.h"
#include "common/logging.h"

namespace aeo {

namespace {

const std::map<std::string, std::function<AppSpec()>>&
Registry()
{
    static const std::map<std::string, std::function<AppSpec()>> kRegistry = {
        {"VidCon", MakeVidConSpec},
        {"MobileBench", MakeMobileBenchSpec},
        {"AngryBirds", MakeAngryBirdsSpec},
        {"WeChat", MakeWeChatSpec},
        {"MXPlayer", MakeMxPlayerSpec},
        {"Spotify", MakeSpotifySpec},
        {"eBook", MakeEbookSpec},
    };
    return kRegistry;
}

}  // namespace

std::vector<std::string>
BuiltinAppNames()
{
    // Presentation order of §IV-C (eBook last: it only appears in Fig. 1).
    return {"VidCon", "MobileBench", "AngryBirds", "WeChat", "MXPlayer",
            "Spotify", "eBook"};
}

AppSpec
MakeAppSpecByName(const std::string& name)
{
    const auto it = Registry().find(name);
    if (it == Registry().end()) {
        Fatal("unknown application '%s'", name.c_str());
    }
    return it->second();
}

bool
IsBuiltinApp(const std::string& name)
{
    return Registry().find(name) != Registry().end();
}

}  // namespace aeo
