/**
 * @file
 * Background-load environments (§III-A, §V-C).
 *
 * The paper profiles under a *baseline load* (WiFi on, e-mail sync enabled,
 * Spotify running in the background) and evaluates the controller under
 * no-load and heavier-load conditions. A background environment here is a
 * looping AppModel (the background demand pattern) plus the memory-pressure
 * and loadavg characteristics the paper reports.
 */
#ifndef AEO_APPS_BACKGROUND_LOAD_H_
#define AEO_APPS_BACKGROUND_LOAD_H_

#include <memory>
#include <string>

#include "apps/app_model.h"

namespace aeo {

/** The three load scenarios of §V-C. */
enum class BackgroundKind {
    kNoLoad,       // NL: only the controlled application runs
    kBaseline,     // BL: WiFi + e-mail sync + Spotify in the background
    kHeavy,        // HL: seven extra apps opened but minimized
};

/** Name as used in the paper's tables ("NL"/"BL"/"HL"). */
std::string ToString(BackgroundKind kind);

/** Static characteristics of a background environment. */
struct BackgroundEnv {
    BackgroundKind kind = BackgroundKind::kBaseline;
    /** The background demand pattern. */
    AppSpec spec;
    /**
     * Memory-pressure multiplier applied to the foreground app's memory
     * intensity (page-cache misses under low free memory). The paper notes
     * free memory is the dominant difference between loads (§V-C).
     */
    double fg_mem_intensity_multiplier = 1.0;
    /** Free memory the load leaves, MB (BL 500 / NL 1024 / HL 134). */
    double free_memory_mb = 500.0;
    /** Resident runnable-task pressure for /proc/loadavg. */
    double resident_tasks = 6.0;
};

/** Builds the environment for one of the paper's three load scenarios. */
BackgroundEnv MakeBackgroundEnv(BackgroundKind kind);

}  // namespace aeo

#endif  // AEO_APPS_BACKGROUND_LOAD_H_
