/**
 * @file
 * Plain data types crossing the platform actuation boundary: retry tuning,
 * health counters, and requested-vs-delivered records. These are the
 * vocabulary shared by the controller (policy side) and any Actuator
 * implementation (platform side); they deliberately depend on nothing but
 * the simulated clock and the SystemConfig tuple, so policy code can use
 * them without seeing a single sysfs path.
 */
#ifndef AEO_PLATFORM_ACTUATION_TYPES_H_
#define AEO_PLATFORM_ACTUATION_TYPES_H_

#include <cstdint>

#include "common/static_vector.h"
#include "common/system_config.h"
#include "sim/time.h"

namespace aeo::platform {

/** Retry/backoff tuning for actuation writes. */
struct ActuationRetryPolicy {
    /** Maximum retries per write after the initial attempt. */
    int max_retries = 4;
    /** First backoff delay; doubles on each subsequent retry. */
    SimTime initial_backoff = SimTime::Millis(12);
    /**
     * Ceiling on the cumulative backoff (plus injected latency) one write
     * may consume. Zero = use the actuator's min dwell, keeping retrial
     * inside the 200 ms dwell budget.
     */
    SimTime budget = SimTime::Zero();
};

/** Counters describing how actuation has gone so far. */
struct ActuationStats {
    /** Successful configuration writes. */
    uint64_t writes = 0;
    /** Retry attempts after transient failures. */
    uint64_t retries = 0;
    /** EINVAL fallbacks to a neighbouring accepted frequency. */
    uint64_t inval_fallbacks = 0;
    /**
     * Writes that exhausted their retry budget and gave up — the write
     * itself *failed* (the kernel returned an error). Distinct from
     * silent_clamps below, where the write succeeded but lied.
     */
    uint64_t failed_ops = 0;
    /** Writes whose read-back verification completed. */
    uint64_t verified_writes = 0;
    /**
     * Writes that were *accepted but not applied*: the write reported
     * success yet read-back showed a different operating point (thermal
     * throttling, an injected silent clamp). Invisible without read-back.
     */
    uint64_t silent_clamps = 0;
    /** Read-backs that themselves failed, leaving the write unverified. */
    uint64_t readback_failures = 0;
    /** Recovery probes of the actuation path (after a watchdog fallback). */
    uint64_t probes = 0;
};

/** Requested-vs-delivered outcome of one subsystem write. */
struct ActuationDelivery {
    /** Whether this subsystem was actuated at all in the dwell. */
    bool attempted = false;
    /** Whether the write (after retries/fallback) reported success. */
    bool write_ok = false;
    /** Whether read-back verification completed. */
    bool verified = false;
    /** Level the actuator asked for (after any EINVAL fallback). */
    int requested_level = -1;
    /** Level read back from the device; -1 when unverified. */
    int delivered_level = -1;

    /** True when the device silently delivered less than requested. */
    bool
    clamped() const
    {
        return verified && delivered_level < requested_level;
    }
};

/** Per-dwell delivery record across the actuated subsystems. */
struct DwellDelivery {
    /** The configuration the slot asked for. */
    SystemConfig requested_config;
    /** Planned dwell duration, seconds (0 for out-of-cycle applies). */
    double seconds = 0.0;
    ActuationDelivery cpu;
    ActuationDelivery bw;
    ActuationDelivery gpu;
    /** LITTLE-cluster frequency; attempted only on big.LITTLE plans. */
    ActuationDelivery little;
};

/** One resolved dwell of an actuation plan: run @p config for @p seconds. */
struct PlannedDwell {
    SystemConfig config;
    double seconds = 0.0;
};

/**
 * A cycle's worth of resolved dwells, in application order. The optimizer's
 * LP admits an optimum with at most two non-zero dwells, so the storage is
 * inline and building a plan on the control path allocates nothing. The
 * controller resolves its profile-table slot indices into SystemConfigs
 * before crossing this boundary — the platform never sees a profile table.
 */
using ActuationPlan = StaticVector<PlannedDwell, 2>;

}  // namespace aeo::platform

#endif  // AEO_PLATFORM_ACTUATION_TYPES_H_
