#include "platform/fake_platform.h"

#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo::platform {

void
FakeActuator::ConfigureActuation(SimTime min_dwell,
                                 const ActuationRetryPolicy& retry)
{
    min_dwell_ = min_dwell;
    retry_ = retry;
}

void
FakeActuator::Apply(const ActuationPlan& plan)
{
    // aeo-lint: allow(hot-path-alloc) -- test double: the recorded plan
    // log is its observable output.
    plans_.push_back(plan);
    if (consecutive_failed_applies_ > 0) {
        ++stats_.failed_ops;
    } else {
        ++stats_.writes;
    }
}

void
FakeActuator::ResetFailureTracking()
{
    ++reset_count_;
    consecutive_failed_applies_ = 0;
}

bool
FakeActuator::ProbeActuationPath()
{
    ++probe_count_;
    ++stats_.probes;
    if (probe_results_.empty()) {
        return true;
    }
    const bool healthy = probe_results_.front();
    probe_results_.pop_front();
    return healthy;
}

void
FakeActuator::ScriptDeliveries(std::vector<DwellDelivery> deliveries)
{
    deliveries_ = std::move(deliveries);
}

FakePlatform::ClusterScript&
FakePlatform::Cluster(int index)
{
    AEO_ASSERT(index >= 0, "negative cluster index %d", index);
    if (index >= static_cast<int>(clusters_.size())) {
        // aeo-lint: allow(hot-path-alloc) -- first-touch script storage:
        // clusters are created during scenario setup, then only re-read.
        clusters_.resize(static_cast<size_t>(index) + 1);
    }
    if (index >= num_clusters_) {
        num_clusters_ = index + 1;
    }
    return clusters_[static_cast<size_t>(index)];
}

void
FakePlatform::ScriptNumCpuClusters(int n)
{
    AEO_ASSERT(n >= 1, "a platform needs at least one cluster, got %d", n);
    Cluster(n - 1);
}

PerfWindow
FakePlatform::DrainWindow()
{
    return DrainClusterWindow(0);
}

double
FakePlatform::DrainAveragePowerMw()
{
    return DrainClusterPowerMw(0);
}

PerfWindow
FakePlatform::DrainClusterWindow(int cluster)
{
    auto& windows = Cluster(cluster).perf_windows;
    if (windows.empty()) {
        return PerfWindow{0.0, 0};
    }
    const PerfWindow window = windows.front();
    windows.pop_front();
    return window;
}

double
FakePlatform::DrainClusterPowerMw(int cluster)
{
    auto& windows = Cluster(cluster).power_windows;
    if (windows.empty()) {
        return 0.0;
    }
    const double mw = windows.front();
    windows.pop_front();
    return mw;
}

void
FakePlatform::PushClusterPowerMw(int cluster, double mw)
{
    Cluster(cluster).power_windows.push_back(mw);
}

void
FakePlatform::ScriptClusterCapLevel(int cluster, int level)
{
    Cluster(cluster).cap_level = level;
}

void
FakePlatform::PushClusterCapEvent(int cluster, int level)
{
    Cluster(cluster).cap_events.push_back(level);
}

int
FakePlatform::ReadClusterCapLevel(int cluster)
{
    ClusterScript& script = Cluster(cluster);
    if (!script.cap_events.empty()) {
        const int level = script.cap_events.front();
        script.cap_events.pop_front();
        return level;
    }
    return script.cap_level;
}

void
FakePlatform::PushClusterPerfWindow(int cluster, double avg_gips,
                                    uint64_t samples)
{
    Cluster(cluster).perf_windows.push_back(PerfWindow{avg_gips, samples});
}

void
FakePlatform::PinForControl(bool bandwidth, bool gpu)
{
    // aeo-lint: allow(hot-path-alloc) -- test double: the governor log
    // is its observable output.
    governor_log_.push_back(StrFormat("pin(bw=%d,gpu=%d)", bandwidth ? 1 : 0,
                                      gpu ? 1 : 0));
}

void
FakePlatform::PushPerfWindow(double avg_gips, uint64_t samples)
{
    PushClusterPerfWindow(0, avg_gips, samples);
}

}  // namespace aeo::platform
