#include "platform/fake_platform.h"

#include <utility>

#include "common/strings.h"

namespace aeo::platform {

void
FakeActuator::ConfigureActuation(SimTime min_dwell,
                                 const ActuationRetryPolicy& retry)
{
    min_dwell_ = min_dwell;
    retry_ = retry;
}

void
FakeActuator::Apply(const ActuationPlan& plan)
{
    plans_.push_back(plan);
    if (consecutive_failed_applies_ > 0) {
        ++stats_.failed_ops;
    } else {
        ++stats_.writes;
    }
}

void
FakeActuator::ResetFailureTracking()
{
    ++reset_count_;
    consecutive_failed_applies_ = 0;
}

bool
FakeActuator::ProbeActuationPath()
{
    ++probe_count_;
    ++stats_.probes;
    if (probe_results_.empty()) {
        return true;
    }
    const bool healthy = probe_results_.front();
    probe_results_.pop_front();
    return healthy;
}

void
FakeActuator::ScriptDeliveries(std::vector<DwellDelivery> deliveries)
{
    deliveries_ = std::move(deliveries);
}

PerfWindow
FakePlatform::DrainWindow()
{
    if (perf_windows_.empty()) {
        return PerfWindow{0.0, 0};
    }
    const PerfWindow window = perf_windows_.front();
    perf_windows_.pop_front();
    return window;
}

double
FakePlatform::DrainAveragePowerMw()
{
    if (power_windows_.empty()) {
        return 0.0;
    }
    const double mw = power_windows_.front();
    power_windows_.pop_front();
    return mw;
}

void
FakePlatform::PinForControl(bool bandwidth, bool gpu)
{
    governor_log_.push_back(StrFormat("pin(bw=%d,gpu=%d)", bandwidth ? 1 : 0,
                                      gpu ? 1 : 0));
}

void
FakePlatform::PushPerfWindow(double avg_gips, uint64_t samples)
{
    perf_windows_.push_back(PerfWindow{avg_gips, samples});
}

}  // namespace aeo::platform
