/**
 * @file
 * The production Platform implementation over the simulated Nexus 6: all
 * sysfs access the control loop needs — governor switches, perf/power
 * window drains, the thermal zone and scaling_max_freq reads, and the
 * ConfigScheduler actuation path — lives behind this one class. The
 * interned SysfsHandles previously opened by OnlineController are opened
 * here, once, at construction.
 */
#ifndef AEO_PLATFORM_SIM_PLATFORM_H_
#define AEO_PLATFORM_SIM_PLATFORM_H_

#include "device/device.h"
#include "platform/config_scheduler.h"
#include "platform/platform.h"
#include "platform/sim_clock.h"

namespace aeo::platform {

/** Platform over the simulated device (the paper's Nexus 6). */
class SimPlatform final : public Platform,
                          public PerfReader,
                          public GovernorControl,
                          public Thermals {
  public:
    /** @param device The plant; must outlive the platform. */
    explicit SimPlatform(Device* device);

    // --- Platform ---------------------------------------------------------
    Simulator& sim() override { return device_->sim(); }
    Clock& clock() override { return clock_; }
    TickScheduler& ticks() override { return tick_scheduler_; }
    PerfReader& perf() override { return *this; }
    Actuator& actuator() override { return scheduler_; }
    GovernorControl& governors() override { return *this; }
    Thermals& thermals() override { return *this; }
    int max_cpu_level() const override;
    int num_cpu_clusters() const override;
    int max_little_level() const override;
    void SetControllerOverheadPower(double mw) override;
    void Sync() override;

    // --- PerfReader -------------------------------------------------------
    void StartSampling() override;
    void StopSampling() override;
    PerfWindow DrainWindow() override;
    double DrainAveragePowerMw() override;

    // --- GovernorControl --------------------------------------------------
    void PinForControl(bool bandwidth, bool gpu) override;
    void RestoreStock() override;

    // --- Thermals ---------------------------------------------------------
    double ReadZoneTempC() override;
    int ReadCpuCapLevel() override;

    /** The underlying actuator (health counters, for tests and benches). */
    const ConfigScheduler& scheduler() const { return scheduler_; }

  private:
    Device* device_;
    ConfigScheduler scheduler_;
    SimClock clock_;
    SimTickScheduler tick_scheduler_;
    /** Interned sysfs nodes for the per-cycle reads and governor switches
     * (opened once at construction; no path strings built while running). */
    SysfsHandle cap_node_;
    SysfsHandle temp_node_;
    SysfsHandle cpu_governor_node_;
    SysfsHandle bw_governor_node_;
    SysfsHandle gpu_governor_node_;
    /** LITTLE policy's governor file; open only on big.LITTLE devices. */
    SysfsHandle little_governor_node_;
};

}  // namespace aeo::platform

#endif  // AEO_PLATFORM_SIM_PLATFORM_H_
