/**
 * @file
 * The hardware-abstraction boundary between resource-management *policy*
 * (the online controller's regulator → optimizer → scheduler pipeline) and
 * the *platform* that measures and actuates (sysfs, PMU, governors,
 * thermal zones). Four narrow interfaces cover everything the control loop
 * needs:
 *
 *  - PerfReader      — GIPS/PMU sampling windows and measured power,
 *  - Actuator        — apply a resolved dwell plan, report delivery and
 *                      silent clamps, probe the actuation path,
 *  - GovernorControl — pin the userspace governors / restore stock ones,
 *  - Thermals        — zone temperature and frequency-cap read-back.
 *
 * A Platform aggregates the four plus the simulated clock. SimPlatform
 * (sim_platform.h) implements them over the simulated Nexus 6's sysfs
 * tree; FakePlatform (fake_platform.h) is a scriptable test double that
 * needs no sysfs at all. Policy code includes only this header — never a
 * src/kernel/ or src/device/ one — which is what lets the controller port
 * to other backends and be unit-tested hermetically.
 */
#ifndef AEO_PLATFORM_PLATFORM_H_
#define AEO_PLATFORM_PLATFORM_H_

#include <cstdint>
#include <vector>

#include "platform/actuation_types.h"

namespace aeo {
class Simulator;
}  // namespace aeo

namespace aeo::platform {

/**
 * Sentinel CPU/bandwidth cap level meaning "no cap in effect". Far above
 * any real level index so callers can combine caps with std::min.
 */
inline constexpr int kNoCapLevel = 1 << 20;

/** One measurement window of perf samples. */
struct PerfWindow {
    /** Average GIPS of the window's samples; 0 when none arrived. */
    double avg_gips = 0.0;
    /** Samples that actually arrived in the window. The controller treats
     * an empty window (all samples dropped) as "no measurement". */
    uint64_t samples = 0;
};

/** Performance/power telemetry for the control loop. */
class PerfReader {
  public:
    virtual ~PerfReader() = default;

    /** Starts periodic perf sampling. */
    virtual void StartSampling() = 0;

    /** Stops perf sampling. */
    virtual void StopSampling() = 0;

    /** Drains and returns the samples since the last drain. */
    virtual PerfWindow DrainWindow() = 0;

    /** Average measured device power since the last drain, mW. */
    virtual double DrainAveragePowerMw() = 0;
};

/** Applies dwell plans to the device and reports what was delivered. */
class Actuator {
  public:
    virtual ~Actuator() = default;

    /**
     * Sets the minimum dwell and retry/backoff policy the actuator applies
     * plans under. Called once by the controller at construction, before
     * any Apply().
     */
    virtual void ConfigureActuation(SimTime min_dwell,
                                    const ActuationRetryPolicy& retry) = 0;

    /**
     * Enables/disables post-write read-back verification. Verification
     * re-reads each subsystem's current operating point after every
     * accepted write and records requested-vs-delivered levels, exposing
     * silent clamps that a write-only actuator cannot see.
     */
    virtual void SetReadbackVerification(bool on) = 0;

    /**
     * Quantizes the plan's dwells to the minimum-dwell grid (preserving
     * the cycle total) and schedules the writes over the coming cycle.
     * Starts a new actuation cycle for failure accounting: the previous
     * cycle's outcome is folded into consecutive_failed_applies() first.
     */
    virtual void Apply(const ActuationPlan& plan) = 0;

    /** Cancels configuration switches still pending from the current
     * cycle (used when the controller hands the device back to the stock
     * governors). */
    virtual void CancelPending() = 0;

    /** Clears the consecutive-failure accounting (used when the watchdog
     * re-engages control: old strikes must not count against the fresh
     * start). */
    virtual void ResetFailureTracking() = 0;

    /**
     * Number of Apply() cycles in a row — including the current one —
     * whose actuation failed (at least one write exhausted its retries).
     */
    virtual int consecutive_failed_applies() const = 0;

    /** Delivery records accumulated since the last Apply() opened a
     * cycle. The controller drains them at the next cycle boundary to
     * learn what the device actually ran. */
    virtual const std::vector<DwellDelivery>& cycle_deliveries() const = 0;

    /** Actuation health counters. */
    virtual const ActuationStats& stats() const = 0;

    /**
     * One recovery probe of the actuation path after a watchdog fallback:
     * pokes the one node control cannot live without and reports whether
     * the path is alive (a value rejection still proves liveness;
     * transport-level errors do not).
     */
    virtual bool ProbeActuationPath() = 0;
};

/** Pins and restores the frequency governors around a control session. */
class GovernorControl {
  public:
    virtual ~GovernorControl() = default;

    /**
     * Takes the device over for userspace control: the CPU governor goes
     * to userspace; the bus and GPU follow only when the controller owns
     * them (@p bandwidth / @p gpu), and otherwise are pinned to their
     * stock governors so they keep deciding independently.
     */
    virtual void PinForControl(bool bandwidth, bool gpu) = 0;

    /** Best-effort restore of the stock governors on every subsystem. */
    virtual void RestoreStock() = 0;
};

/** Temperature and thermal-cap telemetry. */
class Thermals {
  public:
    virtual ~Thermals() = default;

    /** Zone temperature, °C; the leakage reference when unexposed. */
    virtual double ReadZoneTempC() = 0;

    /**
     * The advertised CPU frequency ceiling as a level index, or
     * kNoCapLevel when uncapped (an unreadable ceiling is not evidence of
     * a clamp).
     */
    virtual int ReadCpuCapLevel() = 0;
};

class Clock;
class TickScheduler;

/** The full platform a controller runs against. */
class Platform {
  public:
    virtual ~Platform() = default;

    /** The clock/event queue control cycles are scheduled on. */
    virtual Simulator& sim() = 0;

    /**
     * Monotonic time as the control loop is allowed to see it. Policy code
     * must read time here — never from sim() — so chaos decorators can
     * skew or step the clock under it (DESIGN.md §13).
     */
    virtual Clock& clock() = 0;

    /** Deadline scheduling for control ticks, same decoration rule. */
    virtual TickScheduler& ticks() = 0;

    virtual PerfReader& perf() = 0;
    virtual Actuator& actuator() = 0;
    virtual GovernorControl& governors() = 0;
    virtual Thermals& thermals() = 0;

    /** Highest CPU frequency level the platform exposes (primary/big
     * cluster on heterogeneous SoCs). */
    virtual int max_cpu_level() const = 0;

    /** Number of CPU frequency domains (1 on homogeneous SoCs like the
     * paper's Nexus 6; 2 on big.LITTLE). */
    virtual int num_cpu_clusters() const { return 1; }

    /** Highest LITTLE-cluster frequency level, or -1 when the platform has
     * no LITTLE cluster (the homogeneous default). */
    virtual int max_little_level() const { return -1; }

    /** Charges the controller's own compute/actuation power to the
     * plant (§V-A1); 0 stops charging. */
    virtual void SetControllerOverheadPower(double mw) = 0;

    /** Flushes plant integration up to the current simulated time (call
     * before reading meters outside an event). */
    virtual void Sync() = 0;
};

}  // namespace aeo::platform

#endif  // AEO_PLATFORM_PLATFORM_H_
