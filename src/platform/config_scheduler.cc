#include "platform/config_scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/strings.h"
#include "device/device.h"

namespace aeo::platform {

namespace {

/** Level indices of @p size, ordered by distance of value(i) from
 * value(target), target itself first (ties resolve to the lower level). */
template <typename ValueAt>
std::vector<int>
LevelsByDistance(int size, int target, ValueAt value_at)
{
    std::vector<int> levels(static_cast<size_t>(size));
    std::iota(levels.begin(), levels.end(), 0);
    const double want = value_at(target);
    std::stable_sort(levels.begin(), levels.end(), [&](int a, int b) {
        return std::abs(value_at(a) - want) < std::abs(value_at(b) - want);
    });
    return levels;
}

/** Fills a plan's per-target candidate orders from an integral level-value
 * map: candidates[t] are value(level) strings ordered nearest-to-t first. */
template <typename ValueAt>
void
PrecomputeCandidates(int size, ValueAt value_at,
                     std::vector<std::vector<std::string>>* candidates,
                     std::vector<std::vector<int>>* levels_out)
{
    candidates->resize(static_cast<size_t>(size));
    levels_out->resize(static_cast<size_t>(size));
    for (int target = 0; target < size; ++target) {
        std::vector<int> order = LevelsByDistance(size, target, value_at);
        auto& strings = (*candidates)[static_cast<size_t>(target)];
        strings.reserve(order.size());
        for (const int level : order) {
            strings.push_back(
                StrFormat("%lld", static_cast<long long>(value_at(level))));
        }
        (*levels_out)[static_cast<size_t>(target)] = std::move(order);
    }
}

}  // namespace

ConfigScheduler::ConfigScheduler(Device* device, SimTime min_dwell,
                                 ActuationRetryPolicy retry)
    : device_(device)
{
    AEO_ASSERT(device_ != nullptr, "scheduler needs a device");
    ConfigureActuation(min_dwell, retry);

    // Precompute every actuation plan once: the OPP tables are immutable for
    // the device's lifetime, so the per-dwell path below never formats a
    // value string, builds a path, or sorts a fallback order again.
    Sysfs& sysfs = device_->sysfs();

    const FrequencyTable& cpu_table = device_->cluster().table();
    const auto cpu_khz = [&cpu_table](int level) {
        return static_cast<double>(
            std::llround(cpu_table.FrequencyAt(level).megahertz() * 1000.0));
    };
    const std::string& cpu_root = device_->cpufreq().sysfs_root();
    cpu_plan_.set = sysfs.Open(cpu_root + "/scaling_setspeed");
    cpu_plan_.readback = sysfs.Open(cpu_root + "/scaling_cur_freq");
    PrecomputeCandidates(cpu_table.size(), cpu_khz, &cpu_plan_.candidates,
                         &cpu_plan_.levels);
    cpu_plan_.to_level = [&cpu_table](long long khz) {
        return cpu_table.ClosestLevel(Gigahertz(static_cast<double>(khz) / 1e6));
    };

    // A second frequency domain exists only on big.LITTLE topologies; its
    // plan is precomputed identically from the LITTLE policy's OPP table.
    if (CpufreqPolicy* little = device_->little_cpufreq()) {
        has_little_ = true;
        const FrequencyTable& little_table = little->table();
        const auto little_khz = [&little_table](int level) {
            return static_cast<double>(std::llround(
                little_table.FrequencyAt(level).megahertz() * 1000.0));
        };
        const std::string& little_root = little->sysfs_root();
        little_plan_.set = sysfs.Open(little_root + "/scaling_setspeed");
        little_plan_.readback = sysfs.Open(little_root + "/scaling_cur_freq");
        PrecomputeCandidates(little_table.size(), little_khz,
                             &little_plan_.candidates, &little_plan_.levels);
        little_plan_.to_level = [&little_table](long long khz) {
            return little_table.ClosestLevel(
                Gigahertz(static_cast<double>(khz) / 1e6));
        };
    }

    const BandwidthTable& bw_table = device_->bus().table();
    const auto bw_mbps = [&bw_table](int level) {
        return static_cast<double>(std::llround(bw_table.BandwidthAt(level).value()));
    };
    bw_plan_.set =
        sysfs.Open(std::string(kDevfreqSysfsRoot) + "/userspace/set_freq");
    bw_plan_.readback = sysfs.Open(std::string(kDevfreqSysfsRoot) + "/cur_freq");
    PrecomputeCandidates(bw_table.size(), bw_mbps, &bw_plan_.candidates,
                         &bw_plan_.levels);
    bw_plan_.to_level = [&bw_table](long long mbps) {
        return bw_table.ClosestLevel(MegabytesPerSecond(static_cast<double>(mbps)));
    };

    GpuDomain& gpu = device_->gpu();
    const auto gpu_mhz = [&gpu](int level) {
        return static_cast<double>(std::llround(gpu.MhzAt(level)));
    };
    gpu_plan_.set = sysfs.Open(std::string(kGpuSysfsRoot) + "/userspace/set_freq");
    gpu_plan_.readback = sysfs.Open(std::string(kGpuSysfsRoot) + "/cur_freq");
    PrecomputeCandidates(gpu.size(), gpu_mhz, &gpu_plan_.candidates,
                         &gpu_plan_.levels);
    gpu_plan_.to_level = [&gpu](long long mhz) {
        return gpu.ClosestLevel(static_cast<double>(mhz));
    };
}

void
ConfigScheduler::ConfigureActuation(SimTime min_dwell,
                                    const ActuationRetryPolicy& retry)
{
    min_dwell_ = min_dwell;
    retry_ = retry;
    AEO_ASSERT(min_dwell_ > SimTime::Zero(), "minimum dwell must be positive");
    AEO_ASSERT(retry_.max_retries >= 0, "negative retry count");
    AEO_ASSERT(retry_.initial_backoff > SimTime::Zero(),
               "backoff must be positive");
    if (retry_.budget <= SimTime::Zero()) {
        retry_.budget = min_dwell_;
    }
}

FaultErrc
ConfigScheduler::WriteWithRetry(SysfsHandle node, const std::string& value)
{
    Sysfs& sysfs = device_->sysfs();
    // The backoff clock is budget accounting, not event scheduling: the
    // retries complete atomically inside the actuating event, but the
    // delays they would have cost are charged against the min-dwell budget
    // so a flaky node can only be retried as often as 200 ms permits.
    SimTime spent = SimTime::Zero();
    SimTime backoff = retry_.initial_backoff;
    FaultErrc errc = sysfs.TryWrite(node, value);
    spent += sysfs.last_injected_latency();
    for (int attempt = 0; attempt < retry_.max_retries; ++attempt) {
        const bool retryable = errc == FaultErrc::kBusy ||
                               errc == FaultErrc::kIo ||
                               errc == FaultErrc::kNoEnt;
        if (!retryable || spent + backoff > retry_.budget) {
            break;
        }
        spent += backoff;
        backoff = backoff * 2;
        ++stats_.retries;
        errc = sysfs.TryWrite(node, value);
        spent += sysfs.last_injected_latency();
    }
    return errc;
}

bool
ConfigScheduler::WriteWithFallback(SysfsHandle node,
                                   const std::vector<std::string>& candidates,
                                   size_t* accepted_index)
{
    AEO_ASSERT(!candidates.empty(), "no candidate values for '%s'",
               device_->sysfs().PathOf(node).c_str());
    for (size_t i = 0; i < candidates.size(); ++i) {
        const FaultErrc errc = WriteWithRetry(node, candidates[i]);
        if (errc == FaultErrc::kOk) {
            if (i > 0) {
                ++stats_.inval_fallbacks;
                Warn("sysfs write '%s' <- '%s' rejected; fell back to nearest "
                     "accepted value '%s'",
                     device_->sysfs().PathOf(node).c_str(), candidates[0].c_str(),
                     candidates[i].c_str());
            }
            ++stats_.writes;
            if (accepted_index != nullptr) {
                *accepted_index = i;
            }
            NoteOpOutcome(true);
            return true;
        }
        if (errc != FaultErrc::kInval) {
            // Transient retries exhausted (or the node is gone/read-only):
            // trying a different value will not help.
            Warn("sysfs write '%s' <- '%s' failed: %s (retries exhausted)",
                 device_->sysfs().PathOf(node).c_str(), candidates[i].c_str(),
                 FaultErrcName(errc));
            ++stats_.failed_ops;
            NoteOpOutcome(false);
            return false;
        }
        // EINVAL: this value is rejected; walk to the next-nearest one.
    }
    Warn("sysfs write '%s': all %zu candidate values rejected",
         device_->sysfs().PathOf(node).c_str(), candidates.size());
    ++stats_.failed_ops;
    NoteOpOutcome(false);
    return false;
}

void
ConfigScheduler::NoteOpOutcome(bool ok)
{
    if (!ok && cycle_open_) {
        cycle_has_failure_ = true;
    }
}

int
ConfigScheduler::consecutive_failed_applies() const
{
    return failed_cycles_in_a_row_ + (cycle_open_ && cycle_has_failure_ ? 1 : 0);
}

void
ConfigScheduler::ResetFailureTracking()
{
    failed_cycles_in_a_row_ = 0;
    cycle_has_failure_ = false;
    cycle_open_ = false;
}

bool
ConfigScheduler::ProbeActuationPath()
{
    ++stats_.probes;
    // Under a stock governor scaling_setspeed rejects the value with EINVAL
    // — that still proves the path is alive; transport-level errors
    // (EIO/EBUSY/ENOENT) prove it is not. "0" is harmless even if a
    // userspace governor were active: no table has a 0 kHz level.
    const FaultErrc errc = device_->sysfs().TryWrite(cpu_plan_.set, "0");
    return errc == FaultErrc::kOk || errc == FaultErrc::kInval;
}

void
ConfigScheduler::VerifyDelivery(const SubsystemActuator& plan,
                                ActuationDelivery* delivery)
{
    if (!readback_ || !delivery->write_ok) {
        return;
    }
    const SysfsReadResult result = device_->sysfs().TryRead(plan.readback);
    long long raw = 0;
    if (!result.ok() || !ParseInt64(result.value, &raw)) {
        // The write stands but cannot be checked; stay conservative and
        // report it unverified rather than guessing either way.
        ++stats_.readback_failures;
        return;
    }
    delivery->verified = true;
    delivery->delivered_level = plan.to_level(raw);
    ++stats_.verified_writes;
    if (delivery->delivered_level != delivery->requested_level) {
        ++stats_.silent_clamps;
    }
}

void
ConfigScheduler::ActuateSubsystem(const SubsystemActuator& plan, int target,
                                  ActuationDelivery* delivery)
{
    const auto& candidates = plan.candidates[static_cast<size_t>(target)];
    const auto& levels = plan.levels[static_cast<size_t>(target)];
    delivery->attempted = true;
    size_t accepted = 0;
    delivery->write_ok = WriteWithFallback(plan.set, candidates, &accepted);
    // Verify against the level whose value was *accepted* — an EINVAL
    // fallback is not a clamp, the substituted value was the request.
    delivery->requested_level = delivery->write_ok ? levels[accepted] : target;
    VerifyDelivery(plan, delivery);
}

bool
ConfigScheduler::ApplyConfigNow(const SystemConfig& config)
{
    DwellDelivery delivery;
    delivery.requested_config = config;

    ActuateSubsystem(cpu_plan_, config.cpu_level, &delivery.cpu);
    if (config.controls_bandwidth()) {
        ActuateSubsystem(bw_plan_, config.bw_level, &delivery.bw);
    }
    if (config.controls_gpu()) {
        ActuateSubsystem(gpu_plan_, config.gpu_level, &delivery.gpu);
    }
    if (config.controls_little()) {
        AEO_ASSERT(has_little_,
                   "config %s names a LITTLE level on a single-cluster device",
                   config.ToString().c_str());
        ActuateSubsystem(little_plan_, config.little_level, &delivery.little);
        if (config.placement != kPlacementDefault) {
            // Placement is a scheduler affinity, not a sysfs frequency node:
            // it cannot fail transiently, so it is applied directly.
            device_->SetThreadPlacement(
                static_cast<ThreadPlacement>(config.placement));
        }
    }

    // aeo-lint: allow(hot-path-alloc) -- cleared each cycle; capacity is
    // retained, so growth stops at the slots-per-cycle high-water mark.
    cycle_deliveries_.push_back(delivery);

    const auto subsystem_ok = [](const ActuationDelivery& d) {
        return !d.attempted || d.write_ok;
    };
    return subsystem_ok(delivery.cpu) && subsystem_ok(delivery.bw) &&
           subsystem_ok(delivery.gpu) && subsystem_ok(delivery.little);
}

void
ConfigScheduler::CancelPending()
{
    for (const EventId id : pending_) {
        device_->sim().Cancel(id);
    }
    pending_.clear();
}

// aeo: hot-path
void
ConfigScheduler::Apply(const ActuationPlan& plan)
{
    AEO_ASSERT(!plan.empty(), "empty actuation plan");

    // Cancel configuration switches still pending from the previous cycle
    // and fold that cycle's outcome into the consecutive-failure counter.
    CancelPending();
    if (cycle_open_) {
        failed_cycles_in_a_row_ =
            cycle_has_failure_ ? failed_cycles_in_a_row_ + 1 : 0;
    }
    cycle_open_ = true;
    cycle_has_failure_ = false;
    cycle_deliveries_.clear();

    // Quantize each dwell to the min-dwell grid. With at most two slots,
    // rounding the first and giving the remainder to the second preserves
    // the cycle budget; a slot shorter than half the minimum dwell merges
    // into the other.
    const double grid = min_dwell_.seconds();
    double total = 0.0;
    for (const PlannedDwell& dwell : plan) {
        total += dwell.seconds;
    }

    ActuationPlan quantized;
    if (plan.size() == 1) {
        quantized.push_back(plan.front());
    } else {
        const PlannedDwell& first = plan.front();
        const double rounded = std::round(first.seconds / grid) * grid;
        if (rounded <= 0.0) {
            quantized.push_back(PlannedDwell{plan.back().config, total});
        } else if (rounded >= total) {
            quantized.push_back(PlannedDwell{first.config, total});
        } else {
            quantized.push_back(PlannedDwell{first.config, rounded});
            quantized.push_back(
                PlannedDwell{plan.back().config, total - rounded});
        }
    }

    // Apply the first slot now; schedule the rest.
    SimTime offset = SimTime::Zero();
    for (size_t i = 0; i < quantized.size(); ++i) {
        const SystemConfig config = quantized[i].config;
        const double seconds = quantized[i].seconds;
        if (i == 0) {
            ApplyConfigNow(config);
            cycle_deliveries_.back().seconds = seconds;
        } else {
            // aeo-lint: allow(hot-path-alloc) -- cleared each cycle; capacity
            // is retained, so growth stops at the high-water mark.
            pending_.push_back(
                device_->sim().ScheduleAfter(offset, [this, config, seconds] {
                    ApplyConfigNow(config);
                    cycle_deliveries_.back().seconds = seconds;
                }));
        }
        offset += SimTime::FromSecondsF(quantized[i].seconds);
    }
}

}  // namespace aeo::platform
