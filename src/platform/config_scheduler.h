/**
 * @file
 * The scheduler S of the feedback loop (Fig. 2), now the platform layer's
 * Actuator implementation: applies resolved dwell plans to the phone
 * through the userspace governors' sysfs files, honouring the 200 ms
 * minimum dwell the paper's implementation enforces (§V-A: "the smallest
 * duration for the CPUs to stay at any given frequency is 200 ms"). Not to
 * be confused with the OS scheduler.
 *
 * Actuation is hardened against the failures a real Nexus 6 exhibits:
 *
 *  - transient errors (EBUSY/EIO, injected or real) are retried with capped
 *    exponential backoff, the cumulative delay bounded by the min-dwell
 *    budget so a flaky write can never eat into the next slot;
 *  - EINVAL (a rejected target) falls back to the nearest accepted
 *    frequency, walking outward through the OPP table;
 *  - every exhausted operation is counted, and consecutive fully-failed
 *    Apply() cycles are tracked so the controller's watchdog can revert to
 *    the stock governors after K strikes;
 *  - every accepted write is *verified by read-back*: the subsystem's
 *    cur_freq is re-read and compared against the request, so a write that
 *    succeeds but silently delivers a lower operating point (msm_thermal's
 *    clamp, an injected silent-clamp fault) is detected rather than trusted.
 *
 * The per-dwell path is allocation-free: sysfs nodes are opened once as
 * interned SysfsHandles, and the candidate value strings for every target
 * level (nearest-first, for the EINVAL fallback walk) are precomputed at
 * construction from the device's immutable OPP tables.
 */
#ifndef AEO_PLATFORM_CONFIG_SCHEDULER_H_
#define AEO_PLATFORM_CONFIG_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kernel/sysfs.h"
#include "platform/platform.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace aeo {
class Device;
}  // namespace aeo

namespace aeo::platform {

/** Applies configuration plans to the simulated device. */
class ConfigScheduler final : public Actuator {
  public:
    /**
     * @param device    The plant; must outlive the scheduler.
     * @param min_dwell Minimum time at any configuration (200 ms).
     * @param retry     Retry/backoff tuning for flaky sysfs writes.
     */
    explicit ConfigScheduler(Device* device,
                             SimTime min_dwell = SimTime::Millis(200),
                             ActuationRetryPolicy retry = {});

    /** Replaces the dwell/retry tuning (see Actuator). */
    void ConfigureActuation(SimTime min_dwell,
                            const ActuationRetryPolicy& retry) override;

    void Apply(const ActuationPlan& plan) override;

    /**
     * Writes one configuration immediately, retrying transient failures and
     * substituting the nearest accepted level on EINVAL.
     *
     * @return true if every subsystem write eventually succeeded.
     */
    bool ApplyConfigNow(const SystemConfig& config);

    void CancelPending() override;

    /** Total successful sysfs configuration writes performed. */
    uint64_t write_count() const { return stats_.writes; }

    const ActuationStats& stats() const override { return stats_; }

    void SetReadbackVerification(bool on) override { readback_ = on; }

    const std::vector<DwellDelivery>& cycle_deliveries() const override
    {
        return cycle_deliveries_;
    }

    void ResetFailureTracking() override;

    int consecutive_failed_applies() const override;

    /** Pokes scaling_setspeed with a harmless value: EINVAL still proves
     * the path is alive; transport-level errors prove it is not. */
    bool ProbeActuationPath() override;

  private:
    /**
     * Everything needed to actuate one subsystem without allocating: the
     * interned set/readback nodes, and — per target level — the candidate
     * value strings (and their level indices) ordered by distance from the
     * target, which the EINVAL fallback walks outward.
     */
    struct SubsystemActuator {
        SysfsHandle set;
        SysfsHandle readback;
        std::vector<std::vector<std::string>> candidates;
        std::vector<std::vector<int>> levels;
        /** Maps a raw readback value to the nearest table level. */
        std::function<int(long long)> to_level;
    };

    /** Retries @p value at @p node under the backoff budget. */
    FaultErrc WriteWithRetry(SysfsHandle node, const std::string& value);

    /** One subsystem write with EINVAL fallback over candidate values,
     * ordered preferred-first. @p accepted_index receives the index of the
     * candidate that succeeded (untouched on failure). */
    bool WriteWithFallback(SysfsHandle node,
                           const std::vector<std::string>& candidates,
                           size_t* accepted_index = nullptr);

    /** Writes @p target on @p plan's node (with fallback + read-back) and
     * records the outcome in @p delivery. */
    void ActuateSubsystem(const SubsystemActuator& plan, int target,
                          ActuationDelivery* delivery);

    /** Re-reads @p plan's readback node and fills in the verification half
     * of @p delivery. */
    void VerifyDelivery(const SubsystemActuator& plan,
                        ActuationDelivery* delivery);

    void NoteOpOutcome(bool ok);

    Device* device_;
    SubsystemActuator cpu_plan_;
    SubsystemActuator bw_plan_;
    SubsystemActuator gpu_plan_;
    /** LITTLE-cluster frequency plan; populated only on big.LITTLE. */
    SubsystemActuator little_plan_;
    bool has_little_ = false;
    SimTime min_dwell_;
    ActuationRetryPolicy retry_;
    ActuationStats stats_;
    std::vector<EventId> pending_;
    std::vector<DwellDelivery> cycle_deliveries_;
    bool readback_ = true;
    /** Completed Apply() cycles that failed, consecutively. */
    int failed_cycles_in_a_row_ = 0;
    /** Whether any op has failed in the current cycle. */
    bool cycle_has_failure_ = false;
    bool cycle_open_ = false;
};

}  // namespace aeo::platform

#endif  // AEO_PLATFORM_CONFIG_SCHEDULER_H_
