/**
 * @file
 * A scriptable Platform test double: no Device, no sysfs tree, no kernel
 * models — just queues of scripted telemetry and recorders for everything
 * the controller does. Lets OnlineController's mode logic (degraded mode,
 * safe-mode envelope, watchdog/probe/re-engage, clamp learning) be unit
 * tested hermetically, and documents exactly what a real-device backend
 * would have to provide.
 *
 * Scripting model: each Push... or Script... call appends or sets the value the
 * next matching controller call observes; unscripted calls see benign
 * defaults (healthy probe, no clamp, reference temperature, empty perf
 * window). Every interface call is counted or logged so tests can assert
 * on the controller's outward behaviour alone.
 */
#ifndef AEO_PLATFORM_FAKE_PLATFORM_H_
#define AEO_PLATFORM_FAKE_PLATFORM_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "platform/platform.h"
#include "platform/sim_clock.h"
#include "sim/simulator.h"

namespace aeo::platform {

/** Scriptable Actuator half of the fake (exposed for direct assertions). */
class FakeActuator final : public Actuator {
  public:
    void ConfigureActuation(SimTime min_dwell,
                            const ActuationRetryPolicy& retry) override;
    void SetReadbackVerification(bool on) override { readback_ = on; }
    void Apply(const ActuationPlan& plan) override;
    void CancelPending() override { ++cancel_count_; }
    void ResetFailureTracking() override;
    int consecutive_failed_applies() const override
    {
        return consecutive_failed_applies_;
    }
    const std::vector<DwellDelivery>& cycle_deliveries() const override
    {
        return deliveries_;
    }
    const ActuationStats& stats() const override { return stats_; }
    bool ProbeActuationPath() override;

    // --- Scripting --------------------------------------------------------

    /** Makes consecutive_failed_applies() report @p n until changed. */
    void ScriptConsecutiveFailures(int n) { consecutive_failed_applies_ = n; }

    /** The deliveries every subsequent cycle drains (persistent clamp
     * evidence re-confirms each cycle, exactly like a thermal ceiling). */
    void ScriptDeliveries(std::vector<DwellDelivery> deliveries);

    /** Queues the outcome of the next recovery probe (default healthy). */
    void PushProbeResult(bool healthy) { probe_results_.push_back(healthy); }

    // --- Recorders --------------------------------------------------------

    const std::vector<ActuationPlan>& applied_plans() const { return plans_; }
    uint64_t apply_count() const { return plans_.size(); }
    uint64_t cancel_count() const { return cancel_count_; }
    uint64_t reset_count() const { return reset_count_; }
    uint64_t probe_count() const { return probe_count_; }
    bool readback_verification() const { return readback_; }
    SimTime min_dwell() const { return min_dwell_; }
    const ActuationRetryPolicy& retry() const { return retry_; }

  private:
    std::vector<ActuationPlan> plans_;
    std::vector<DwellDelivery> deliveries_;
    std::deque<bool> probe_results_;
    ActuationStats stats_;
    SimTime min_dwell_ = SimTime::Millis(200);
    ActuationRetryPolicy retry_;
    int consecutive_failed_applies_ = 0;
    uint64_t cancel_count_ = 0;
    uint64_t reset_count_ = 0;
    uint64_t probe_count_ = 0;
    bool readback_ = true;
};

/** The scriptable platform. Owns its own Simulator. */
class FakePlatform final : public Platform,
                           public PerfReader,
                           public GovernorControl,
                           public Thermals {
  public:
    FakePlatform() = default;

    // --- Platform ---------------------------------------------------------
    Simulator& sim() override { return sim_; }
    Clock& clock() override { return clock_; }
    TickScheduler& ticks() override { return tick_scheduler_; }
    PerfReader& perf() override { return *this; }
    Actuator& actuator() override { return actuator_; }
    GovernorControl& governors() override { return *this; }
    Thermals& thermals() override { return *this; }
    int max_cpu_level() const override { return max_cpu_level_; }
    int num_cpu_clusters() const override { return num_clusters_; }
    int max_little_level() const override { return max_little_level_; }
    void SetControllerOverheadPower(double mw) override
    {
        overhead_mw_ = mw;
    }
    void Sync() override {}

    // --- PerfReader -------------------------------------------------------
    void StartSampling() override { sampling_ = true; }
    void StopSampling() override { sampling_ = false; }
    PerfWindow DrainWindow() override;
    double DrainAveragePowerMw() override;

    // --- GovernorControl --------------------------------------------------
    void PinForControl(bool bandwidth, bool gpu) override;
    // aeo-lint: allow(hot-path-alloc) -- test double: the governor log
    // is its observable output.
    void RestoreStock() override { governor_log_.push_back("restore-stock"); }

    // --- Thermals ---------------------------------------------------------
    double ReadZoneTempC() override { return temp_c_; }
    int ReadCpuCapLevel() override { return ReadClusterCapLevel(0); }

    // --- Scripting --------------------------------------------------------

    /** Queues one perf window; drained FIFO. An exhausted queue serves
     * empty windows (every sample dropped). Alias of cluster 0's queue. */
    void PushPerfWindow(double avg_gips, uint64_t samples);

    /** Queues one measured-power window; exhausted queue serves @p 0.
     * Alias of cluster 0's queue. */
    void PushPowerMw(double mw) { PushClusterPowerMw(0, mw); }

    void ScriptTempC(double temp_c) { temp_c_ = temp_c; }

    /** Sets the persistent cap reported once the cap-event queue drains.
     * Alias of cluster 0. */
    void ScriptCpuCapLevel(int level) { ScriptClusterCapLevel(0, level); }
    void ScriptMaxCpuLevel(int level) { max_cpu_level_ = level; }

    // --- Per-cluster scripting (big.LITTLE doubles) -----------------------
    //
    // Cluster 0 is the primary/big domain and aliases the legacy single-
    // cluster queues above, so existing tests keep their meaning unchanged.
    // Scripting any cluster > 0 grows the fake's topology automatically.

    /** Declares a @p n-domain platform (clamped up by later scripting). */
    void ScriptNumCpuClusters(int n);

    /** Highest LITTLE level max_little_level() reports (-1 = absent). */
    void ScriptMaxLittleLevel(int level) { max_little_level_ = level; }

    /** Queues one perf window on @p cluster's queue; drained FIFO by
     * DrainClusterWindow. Cluster 0 also feeds DrainWindow(). */
    void PushClusterPerfWindow(int cluster, double avg_gips, uint64_t samples);

    /** Queues one measured-power window on @p cluster's queue. */
    void PushClusterPowerMw(int cluster, double mw);

    /** Sets @p cluster's persistent cap level (kNoCapLevel = uncapped). */
    void ScriptClusterCapLevel(int cluster, int level);

    /** Queues a one-shot cap *event*: the next cap read on @p cluster
     * observes @p level once, then the persistent cap applies again —
     * exactly how a transient msm_thermal clamp appears to a poller. */
    void PushClusterCapEvent(int cluster, int level);

    /** Drains @p cluster's next perf window (empty when exhausted). */
    PerfWindow DrainClusterWindow(int cluster);

    /** Drains @p cluster's next power window (0 when exhausted). */
    double DrainClusterPowerMw(int cluster);

    /** Cap read on @p cluster: pops a queued event, else the persistent
     * cap. Cluster 0 is what Thermals::ReadCpuCapLevel() reports. */
    int ReadClusterCapLevel(int cluster);

    // --- Recorders --------------------------------------------------------

    FakeActuator& fake_actuator() { return actuator_; }
    bool sampling() const { return sampling_; }
    double overhead_mw() const { return overhead_mw_; }
    /** Chronological log of governor transitions, e.g. "pin(bw=1,gpu=0)". */
    const std::vector<std::string>& governor_log() const
    {
        return governor_log_;
    }

  private:
    /** Scripted telemetry for one frequency domain. */
    struct ClusterScript {
        std::deque<PerfWindow> perf_windows;
        std::deque<double> power_windows;
        /** One-shot cap readings consumed before @p cap_level applies. */
        std::deque<int> cap_events;
        int cap_level = kNoCapLevel;
    };

    /** Cluster @p index's script, growing the topology on demand. */
    ClusterScript& Cluster(int index);

    Simulator sim_;
    SimClock clock_{&sim_};
    SimTickScheduler tick_scheduler_{&sim_};
    FakeActuator actuator_;
    std::vector<ClusterScript> clusters_{1};
    std::vector<std::string> governor_log_;
    double temp_c_ = 25.0;
    int num_clusters_ = 1;
    int max_little_level_ = -1;
    int max_cpu_level_ = 17;
    double overhead_mw_ = 0.0;
    bool sampling_ = false;
};

}  // namespace aeo::platform

#endif  // AEO_PLATFORM_FAKE_PLATFORM_H_
