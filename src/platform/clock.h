/**
 * @file
 * The time seam of the platform boundary: policy code (src/core,
 * src/control) never reads the raw Simulator clock or schedules events
 * directly — it consumes time through these two narrow, decoratable
 * interfaces. That is what lets the chaos layer inject tick jitter,
 * handler overruns, suspend/resume gaps and monotonic-clock steps without
 * the controller knowing, and what DESIGN.md §13's deadline model hangs
 * off (the `time-seam` aeo-lint rule enforces the confinement).
 */
#ifndef AEO_PLATFORM_CLOCK_H_
#define AEO_PLATFORM_CLOCK_H_

#include <cstdint>
#include <functional>

#include "sim/time.h"

namespace aeo::platform {

/**
 * Monotonic time source for the control loop. On a real device this would
 * be CLOCK_MONOTONIC; here it is the Simulator clock, possibly wrapped by
 * a chaos decorator that steps or skews it. Implementations must never run
 * backwards.
 */
class Clock {
  public:
    virtual ~Clock() = default;

    /** Current monotonic time. */
    virtual SimTime Now() = 0;
};

/** Opaque handle to a pending tick; 0 is never a live tick. */
using TickHandle = uint64_t;

inline constexpr TickHandle kInvalidTickHandle = 0;

/**
 * One-shot deadline scheduling for control-loop ticks. A decorator may
 * deliver a tick late (jitter, overrun, suspend deferral) but never early
 * and never drop it; the DeadlineSupervisor on top classifies the lateness.
 */
class TickScheduler {
  public:
    virtual ~TickScheduler() = default;

    /**
     * Schedules @p fn to run at absolute time @p when (a deadline already
     * in the past runs as soon as possible). Returns a handle for
     * CancelTick(); the handle is dead once the tick has fired.
     */
    virtual TickHandle ScheduleTick(SimTime when,
                                    std::function<void()> fn) = 0;

    /** Cancels a pending tick; cancelling a dead handle is a no-op. */
    virtual void CancelTick(TickHandle handle) = 0;
};

}  // namespace aeo::platform

#endif  // AEO_PLATFORM_CLOCK_H_
