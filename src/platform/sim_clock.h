/**
 * @file
 * Simulator-backed implementations of the Clock/TickScheduler seam. These
 * are the "real" time sources in this repo: SimPlatform hands them to the
 * controller, and chaos decorators wrap them to perturb delivery.
 */
#ifndef AEO_PLATFORM_SIM_CLOCK_H_
#define AEO_PLATFORM_SIM_CLOCK_H_

#include <algorithm>
#include <functional>
#include <utility>

#include "platform/clock.h"
#include "sim/simulator.h"

namespace aeo::platform {

/** Clock over the discrete-event Simulator's virtual time. */
class SimClock final : public Clock {
  public:
    explicit SimClock(Simulator* sim) : sim_(sim) {}

    SimTime Now() override { return sim_->Now(); }

  private:
    Simulator* sim_;
};

/**
 * TickScheduler over the Simulator event queue. TickHandle identity-maps
 * EventId (both reserve 0 as the dead value). Deadlines already in the
 * past — e.g. after a catch-up decision or a decorator-injected suspend
 * gap — are clamped to "now" because Simulator::ScheduleAt requires
 * when >= Now().
 */
class SimTickScheduler final : public TickScheduler {
  public:
    static_assert(kInvalidTickHandle == kInvalidEventId,
                  "TickHandle identity-maps EventId");

    explicit SimTickScheduler(Simulator* sim) : sim_(sim) {}

    TickHandle ScheduleTick(SimTime when, std::function<void()> fn) override {
        return sim_->ScheduleAt(std::max(when, sim_->Now()), std::move(fn));
    }

    void CancelTick(TickHandle handle) override { sim_->Cancel(handle); }

  private:
    Simulator* sim_;
};

}  // namespace aeo::platform

#endif  // AEO_PLATFORM_SIM_CLOCK_H_
