#include "platform/sim_platform.h"

#include <string>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo::platform {

namespace {

/** Best-effort governor switch: transient errors get a few immediate
 * retries, and a write that still fails is survivable (the watchdog covers
 * persistent actuation failure), so warn instead of aborting. */
void
TrySetGovernor(Sysfs& sysfs, SysfsHandle node, const std::string& value)
{
    FaultErrc errc = FaultErrc::kOk;
    for (int attempt = 0; attempt < 3; ++attempt) {
        errc = sysfs.TryWrite(node, value);
        const bool retryable = errc == FaultErrc::kBusy ||
                               errc == FaultErrc::kIo ||
                               errc == FaultErrc::kNoEnt;
        if (!retryable) {
            break;
        }
    }
    if (errc != FaultErrc::kOk) {
        Warn("governor switch '%s' <- '%s' failed: %s", sysfs.PathOf(node).c_str(),
             value.c_str(), FaultErrcName(errc));
    }
}

}  // namespace

SimPlatform::SimPlatform(Device* device)
    : device_(device), scheduler_(device), clock_(&device->sim()),
      tick_scheduler_(&device->sim())
{
    AEO_ASSERT(device_ != nullptr, "platform needs a device");
    Sysfs& sysfs = device_->sysfs();
    // The policy directory differs between the historical single-cluster
    // tree (cpu0/cpufreq) and the big.LITTLE per-policy tree (cpufreq/
    // policyN); the device knows which one it built.
    const std::string& cpu_root = device_->cpufreq().sysfs_root();
    cap_node_ = sysfs.Open(cpu_root + "/scaling_max_freq");
    temp_node_ = sysfs.Open("/sys/class/thermal/thermal_zone0/temp");
    cpu_governor_node_ = sysfs.Open(cpu_root + "/scaling_governor");
    bw_governor_node_ = sysfs.Open(std::string(kDevfreqSysfsRoot) + "/governor");
    gpu_governor_node_ = sysfs.Open(std::string(kGpuSysfsRoot) + "/governor");
    if (CpufreqPolicy* little = device_->little_cpufreq()) {
        little_governor_node_ =
            sysfs.Open(little->sysfs_root() + "/scaling_governor");
    }
}

int
SimPlatform::num_cpu_clusters() const
{
    return device_->topology().num_clusters();
}

int
SimPlatform::max_little_level() const
{
    const CpuCluster* little = device_->little_cluster();
    return little != nullptr ? little->table().max_level() : -1;
}

int
SimPlatform::max_cpu_level() const
{
    return device_->cluster().table().max_level();
}

void
SimPlatform::SetControllerOverheadPower(double mw)
{
    device_->SetControllerOverheadPower(mw);
}

void
SimPlatform::Sync()
{
    device_->Sync();
}

void
SimPlatform::StartSampling()
{
    device_->perf().Start();
}

void
SimPlatform::StopSampling()
{
    device_->perf().Stop();
}

PerfWindow
SimPlatform::DrainWindow()
{
    const aeo::PerfWindow window = device_->perf().DrainWindow();
    return PerfWindow{window.avg_gips, window.samples};
}

double
SimPlatform::DrainAveragePowerMw()
{
    return device_->monitor().DrainWindowAveragePower().value();
}

void
SimPlatform::PinForControl(bool bandwidth, bool gpu)
{
    Sysfs& sysfs = device_->sysfs();
    TrySetGovernor(sysfs, cpu_governor_node_, "userspace");
    if (little_governor_node_.valid()) {
        // Both frequency domains go to userspace: the big.LITTLE controller
        // owns the LITTLE clock alongside the big one.
        TrySetGovernor(sysfs, little_governor_node_, "userspace");
    }
    if (bandwidth) {
        TrySetGovernor(sysfs, bw_governor_node_, "userspace");
    } else {
        // CPU-only controller (§V-D): the bus stays with the default
        // governor, taking decisions in an independent, isolated manner.
        TrySetGovernor(sysfs, bw_governor_node_, "cpubw_hwmon");
    }
    if (gpu) {
        // §VII extension: GPU frequency joins the coordinated configuration.
        TrySetGovernor(sysfs, gpu_governor_node_, "userspace");
    } else {
        TrySetGovernor(sysfs, gpu_governor_node_, "msm-adreno-tz");
    }
}

void
SimPlatform::RestoreStock()
{
    Sysfs& sysfs = device_->sysfs();
    // Best effort: if even these writes fail, the device keeps whatever
    // governors it has — there is nothing further a userspace agent can do.
    TrySetGovernor(sysfs, cpu_governor_node_, "interactive");
    if (little_governor_node_.valid()) {
        TrySetGovernor(sysfs, little_governor_node_, "interactive");
    }
    TrySetGovernor(sysfs, bw_governor_node_, "cpubw_hwmon");
    TrySetGovernor(sysfs, gpu_governor_node_, "msm-adreno-tz");
}

double
SimPlatform::ReadZoneTempC()
{
    // Absent on thermally unmodelled devices; TryRead returns ENOENT for an
    // unregistered path before consulting any fault injector.
    const SysfsReadResult result = device_->sysfs().TryRead(temp_node_);
    long long millideg = 0;
    if (!result.ok() || !ParseInt64(result.value, &millideg)) {
        return kLeakageReferenceC;
    }
    return static_cast<double>(millideg) / 1000.0;
}

int
SimPlatform::ReadCpuCapLevel()
{
    const SysfsReadResult result = device_->sysfs().TryRead(cap_node_);
    long long khz = 0;
    if (!result.ok() || !ParseInt64(result.value, &khz) || khz <= 0) {
        // Unreadable is not evidence of a clamp; assume uncapped.
        return kNoCapLevel;
    }
    return device_->cluster().table().ClosestLevel(
        Gigahertz(static_cast<double>(khz) / 1e6));
}

}  // namespace aeo::platform
