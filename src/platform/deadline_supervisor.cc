#include "platform/deadline_supervisor.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace aeo::platform {

const char*
TickKindName(TickKind kind)
{
    switch (kind) {
    case TickKind::kOnTime:
        return "on-time";
    case TickKind::kJitter:
        return "jitter";
    case TickKind::kMissed:
        return "missed";
    case TickKind::kSuspendGap:
        return "suspend-gap";
    }
    return "unknown";
}

DeadlineSupervisor::DeadlineSupervisor(Clock* clock, TickScheduler* scheduler,
                                       std::function<void(const TickInfo&)> fn)
    : clock_(clock), scheduler_(scheduler), fn_(std::move(fn))
{
    AEO_ASSERT(clock_ != nullptr, "DeadlineSupervisor needs a clock");
    AEO_ASSERT(scheduler_ != nullptr, "DeadlineSupervisor needs a scheduler");
    AEO_ASSERT(fn_ != nullptr, "DeadlineSupervisor needs a callback");
}

DeadlineSupervisor::~DeadlineSupervisor()
{
    Stop();
}

void
DeadlineSupervisor::Start(const DeadlinePolicy& policy)
{
    AEO_ASSERT(policy.period > SimTime::Zero(), "period must be positive");
    AEO_ASSERT(policy.jitter_tolerance >= 0.0, "jitter tolerance < 0");
    AEO_ASSERT(policy.suspend_gap_periods > policy.jitter_tolerance,
               "suspend threshold must exceed jitter tolerance");
    Stop();
    policy_ = policy;
    running_ = true;
    consecutive_misses_ = 0;
    pending_catch_up_ = false;
    ScheduleNext(clock_->Now() + policy_.period);
}

void
DeadlineSupervisor::Stop()
{
    if (pending_ != kInvalidTickHandle) {
        scheduler_->CancelTick(pending_);
        pending_ = kInvalidTickHandle;
    }
    running_ = false;
    // Invalidate any tick already mid-delivery so a restart from inside the
    // callback can never be double-fired by the stale schedule.
    ++generation_;
}

void
DeadlineSupervisor::ScheduleNext(SimTime deadline)
{
    next_deadline_ = deadline;
    pending_ = scheduler_->ScheduleTick(
        deadline, [this, gen = generation_] { Fire(gen); });
}

void
DeadlineSupervisor::Fire(uint64_t generation)
{
    if (generation != generation_ || !running_) {
        return;
    }
    pending_ = kInvalidTickHandle;

    TickInfo info;
    info.scheduled = next_deadline_;
    info.actual = clock_->Now();
    info.lateness = std::max(info.actual - info.scheduled, SimTime::Zero());
    info.catch_up = pending_catch_up_;
    pending_catch_up_ = false;

    const int64_t period_us = policy_.period.micros();
    const int64_t lateness_us = info.lateness.micros();
    const auto periods_late =
        static_cast<double>(lateness_us) / static_cast<double>(period_us);
    if (lateness_us == 0) {
        info.kind = TickKind::kOnTime;
    } else if (periods_late >= policy_.suspend_gap_periods) {
        info.kind = TickKind::kSuspendGap;
    } else if (periods_late <= policy_.jitter_tolerance) {
        info.kind = TickKind::kJitter;
    } else {
        info.kind = TickKind::kMissed;
    }
    info.epochs_skipped = lateness_us / period_us;

    if (info.kind == TickKind::kMissed) {
        ++consecutive_misses_;
    } else {
        consecutive_misses_ = 0;
    }
    info.consecutive_misses = consecutive_misses_;

    ++stats_.ticks;
    switch (info.kind) {
    case TickKind::kOnTime:
        ++stats_.on_time;
        break;
    case TickKind::kJitter:
        ++stats_.jitter;
        break;
    case TickKind::kMissed:
        ++stats_.missed;
        break;
    case TickKind::kSuspendGap:
        ++stats_.suspend_gaps;
        break;
    }
    if (info.catch_up) {
        ++stats_.catch_up_ticks;
    }
    stats_.epochs_skipped += info.epochs_skipped;
    stats_.max_lateness = std::max(stats_.max_lateness, info.lateness);

    // Pick the next deadline. Catch-up keeps the grid and works through the
    // backlog (a past deadline fires immediately via the scheduler clamp);
    // everything else resyncs to the first grid point strictly after now.
    SimTime next;
    if (info.kind == TickKind::kMissed &&
        policy_.miss_policy == DeadlineMissPolicy::kCatchUp) {
        next = info.scheduled + policy_.period;
        pending_catch_up_ = next <= info.actual;
    } else {
        // First grid point strictly after `actual` (floor(lateness/p) + 1
        // periods past the old deadline).
        next = info.scheduled + policy_.period * (info.epochs_skipped + 1);
    }

    // Reschedule before delivering, mirroring PeriodicTask: the callback may
    // Stop() or restart us, and same-timestamp event order stays identical
    // to the pre-seam control loop on a clean clock.
    ScheduleNext(next);
    fn_(info);
}

}  // namespace aeo::platform
