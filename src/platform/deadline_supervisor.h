/**
 * @file
 * DeadlineSupervisor: the periodic control tick, rebuilt on the
 * Clock/TickScheduler seam with deadline awareness. Where the old
 * sim::PeriodicTask simply refired every `period`, the supervisor keeps an
 * explicit deadline grid, measures how late each tick was actually
 * delivered, classifies the lateness (on-time / jitter / missed /
 * suspend-gap), and decides where the next deadline goes (resync to the
 * grid, or catch up through the backlog). The classification travels to
 * the callback as a TickInfo so the controller can adjust its estimators
 * and watchdog instead of silently consuming a stretched epoch.
 *
 * Scheduling order is deliberately identical to PeriodicTask: the next
 * tick is scheduled *before* the callback runs, so same-timestamp event
 * insertion order — and therefore every bit-identity bench snapshot — is
 * unchanged on a fault-free clock.
 */
#ifndef AEO_PLATFORM_DEADLINE_SUPERVISOR_H_
#define AEO_PLATFORM_DEADLINE_SUPERVISOR_H_

#include <cstdint>
#include <functional>

#include "platform/clock.h"
#include "sim/time.h"

namespace aeo::platform {

/** How late a tick was, relative to the deadline policy. */
enum class TickKind {
    /** Delivered exactly on its deadline. */
    kOnTime,
    /** Late, but within the jitter tolerance — same epoch, usable data. */
    kJitter,
    /** Late past tolerance but short of a suspend gap: the epoch slipped. */
    kMissed,
    /** Late by >= suspend_gap_periods epochs: the SoC slept through. */
    kSuspendGap,
};

/** Stable lower-case name, for records and JSON. */
const char* TickKindName(TickKind kind);

/** What to do with the deadlines a missed tick slid past. */
enum class DeadlineMissPolicy {
    /** Drop the missed epochs and resync to the next grid point. */
    kSkipAndResync,
    /** Work through the backlog: fire immediately until caught up. */
    kCatchUp,
};

/** Deadline contract for one supervised periodic activity. */
struct DeadlinePolicy {
    /** Nominal tick period; must be positive. */
    SimTime period = SimTime::Zero();
    /** Lateness up to this fraction of a period is classified jitter. */
    double jitter_tolerance = 0.25;
    /** Lateness of at least this many periods is a suspend gap. */
    double suspend_gap_periods = 3.0;
    DeadlineMissPolicy miss_policy = DeadlineMissPolicy::kSkipAndResync;
};

/** Everything the callback learns about the tick that just fired. */
struct TickInfo {
    TickKind kind = TickKind::kOnTime;
    /** The deadline this tick was due at. */
    SimTime scheduled = SimTime::Zero();
    /** When it actually ran. */
    SimTime actual = SimTime::Zero();
    /** actual - scheduled; never negative. */
    SimTime lateness = SimTime::Zero();
    /** Whole deadline periods the lateness spans (0 for jitter). */
    int64_t epochs_skipped = 0;
    /** Run length of kMissed ticks ending at this one (storm detector). */
    int consecutive_misses = 0;
    /** True when this tick is a backlog tick under kCatchUp. */
    bool catch_up = false;
};

/** Cumulative counters across the supervisor's lifetime. */
struct DeadlineStats {
    int64_t ticks = 0;
    int64_t on_time = 0;
    int64_t jitter = 0;
    int64_t missed = 0;
    int64_t suspend_gaps = 0;
    int64_t catch_up_ticks = 0;
    int64_t epochs_skipped = 0;
    SimTime max_lateness = SimTime::Zero();
};

/**
 * Periodic deadline-tracked tick source. Not thread-safe; lives on the
 * simulator's (single) event thread like everything else in the loop.
 * Start() and Stop() are safe to call from inside the callback — a
 * restart mid-delivery invalidates the in-flight generation so the stale
 * schedule can never double-fire.
 */
class DeadlineSupervisor {
  public:
    DeadlineSupervisor(Clock* clock, TickScheduler* scheduler,
                       std::function<void(const TickInfo&)> fn);
    ~DeadlineSupervisor();

    DeadlineSupervisor(const DeadlineSupervisor&) = delete;
    DeadlineSupervisor& operator=(const DeadlineSupervisor&) = delete;

    /**
     * (Re)starts ticking under @p policy; the first deadline is one period
     * from now. Restarting cancels any pending tick first.
     */
    void Start(const DeadlinePolicy& policy);

    /** Cancels the pending tick; idempotent. */
    void Stop();

    bool running() const { return running_; }
    const DeadlineStats& stats() const { return stats_; }
    const DeadlinePolicy& policy() const { return policy_; }

  private:
    void Fire(uint64_t generation);
    void ScheduleNext(SimTime deadline);

    Clock* clock_;
    TickScheduler* scheduler_;
    std::function<void(const TickInfo&)> fn_;

    DeadlinePolicy policy_;
    bool running_ = false;
    TickHandle pending_ = kInvalidTickHandle;
    SimTime next_deadline_ = SimTime::Zero();
    int consecutive_misses_ = 0;
    bool pending_catch_up_ = false;
    DeadlineStats stats_;
    /** Bumped by Start/Stop; in-flight ticks from older generations no-op. */
    uint64_t generation_ = 0;
};

}  // namespace aeo::platform

#endif  // AEO_PLATFORM_DEADLINE_SUPERVISOR_H_
