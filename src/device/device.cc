#include "device/device.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "kernel/governors/cpufreq_interactive.h"
#include "kernel/governors/cpufreq_conservative.h"
#include "kernel/governors/cpufreq_lulzactive.h"
#include "kernel/governors/cpufreq_ondemand.h"
#include "kernel/governors/cpufreq_performance.h"
#include "kernel/governors/cpufreq_powersave.h"
#include "kernel/governors/cpufreq_userspace.h"
#include "kernel/governors/devfreq_cpubw_hwmon.h"
#include "kernel/governors/devfreq_simple.h"
#include "soc/nexus6.h"

namespace aeo {

namespace {

/** Demand of an empty foreground (home screen idle). */
WorkloadDemand
IdleDemand()
{
    WorkloadDemand demand;
    demand.ipc = 0.5;
    demand.parallelism = 1.0;
    demand.mem_bytes_per_instr = 0.2;
    demand.demand_gips = 0.002;
    return demand;
}

}  // namespace

namespace {

/** Registers the stock governor set on a cpufreq policy. */
void
RegisterStockCpufreqGovernors(CpufreqPolicy* policy)
{
    policy->RegisterGovernor("interactive", MakeCpufreqInteractiveFactory());
    policy->RegisterGovernor("ondemand", MakeCpufreqOndemandFactory());
    policy->RegisterGovernor("conservative", MakeCpufreqConservativeFactory());
    policy->RegisterGovernor("performance", MakeCpufreqPerformanceFactory());
    policy->RegisterGovernor("powersave", MakeCpufreqPowersaveFactory());
    policy->RegisterGovernor("userspace", MakeCpufreqUserspaceFactory());
    policy->RegisterGovernor("lulzactive", MakeCpufreqLulzactiveFactory());
}

}  // namespace

Device::Device(DeviceConfig config)
    : config_(config),
      topology_(config_.topology ? *config_.topology : MakeNexus6Topology()),
      cluster_(topology_.primary().table, topology_.primary().num_cores),
      bus_(topology_.bandwidth_table()),
      gpu_(MakeAdreno420()),
      engine_(config.exec_params),
      power_model_(config.power_params),
      loadavg_(6.0),
      cpu_residency_(static_cast<size_t>(topology_.primary().table.size())),
      bw_residency_(static_cast<size_t>(topology_.bandwidth_table().size())),
      gpu_residency_(static_cast<size_t>(kAdreno420Levels)),
      little_residency_(static_cast<size_t>(
          topology_.is_heterogeneous() ? topology_.little().table.size() : 1))
{
    Rng seeder(config_.seed);
    placement_ = topology_.is_heterogeneous() ? ThreadPlacement::kBoth
                                              : ThreadPlacement::kBigOnly;

    // On big.LITTLE each domain gets its policyN directory; the homogeneous
    // build keeps the legacy per-cpu root so node paths (and anything keyed
    // on them, e.g. fault rules) are unchanged.
    const std::string cpufreq_root =
        topology_.is_heterogeneous()
            ? CpufreqPolicyRoot(topology_.primary().first_cpu)
            : std::string(kCpufreqSysfsRoot);
    cpufreq_ = std::make_unique<CpufreqPolicy>(&sim_, &cluster_, &load_meter_,
                                               &sysfs_, cpufreq_root);
    RegisterStockCpufreqGovernors(cpufreq_.get());
    if (topology_.is_heterogeneous()) {
        little_cluster_.emplace(topology_.little().table,
                                topology_.little().num_cores);
        little_cpufreq_ = std::make_unique<CpufreqPolicy>(
            &sim_, &*little_cluster_, &little_load_meter_, &sysfs_,
            CpufreqPolicyRoot(topology_.little().first_cpu));
        RegisterStockCpufreqGovernors(little_cpufreq_.get());
    }

    devfreq_ = std::make_unique<DevfreqPolicy>(&sim_, &bus_, &traffic_meter_,
                                               &sysfs_, kDevfreqSysfsRoot);
    devfreq_->RegisterGovernor("cpubw_hwmon", MakeDevfreqCpubwHwmonFactory());
    devfreq_->RegisterGovernor("performance", MakeDevfreqPerformanceFactory());
    devfreq_->RegisterGovernor("powersave", MakeDevfreqPowersaveFactory());
    devfreq_->RegisterGovernor("userspace", MakeDevfreqUserspaceFactory());

    gpufreq_ = std::make_unique<GpuFreqPolicy>(&sim_, &gpu_, &gpu_meter_, &sysfs_,
                                               kGpuSysfsRoot);
    gpufreq_->RegisterGovernor("msm-adreno-tz", MakeAdrenoTzFactory());
    gpufreq_->RegisterGovernor("userspace", MakeGpuUserspaceFactory());
    gpufreq_->RegisterGovernor("performance", MakeGpuPerformanceFactory());

    perf_ = std::make_unique<PerfTool>(&sim_, &pmu_, seeder.Fork().NextU64(),
                                       config_.perf);
    monitor_ = std::make_unique<MonsoonMonitor>(
        &sim_, [this] { return CurrentPower(); }, seeder.Fork().NextU64(),
        config_.monsoon);

    // The injector's seed is derived outside the seeder.Fork() chain so that
    // configuring (or clearing) fault rules never shifts the component RNG
    // streams: a fault-free run is bit-identical either way.
    if (!config_.fault_rules.empty()) {
        fault_injector_ =
            std::make_unique<FaultInjector>(config_.seed ^ 0xFA171FA171ULL);
        for (const FaultRule& rule : config_.fault_rules) {
            fault_injector_->AddRule(rule);
        }
        sysfs_.SetFaultInjector(fault_injector_.get());
        perf_->SetFaultInjector(fault_injector_.get());
        monitor_->SetFaultInjector(fault_injector_.get());
    }

    background_env_ = MakeBackgroundEnv(BackgroundKind::kBaseline);
    background_ =
        std::make_unique<AppModel>(background_env_.spec, seeder.Fork().NextU64());
    loadavg_.set_resident_tasks(background_env_.resident_tasks);

    // Governors and perf sample lazily-integrated meters; the hooks bring
    // them up to date at each sampling instant.
    cpufreq_->SetSyncHook([this] { IntegrateToNow(); });
    if (little_cpufreq_) {
        little_cpufreq_->SetSyncHook([this] { IntegrateToNow(); });
    }
    devfreq_->SetSyncHook([this] { IntegrateToNow(); });
    gpufreq_->SetSyncHook([this] { IntegrateToNow(); });
    perf_->SetSyncHook([this] { IntegrateToNow(); });

    cluster_.SetPreChangeListener([this] { IntegrateToNow(); });
    cluster_.SetPostChangeListener([this] {
        RecomputeRates();
        RescheduleBoundary();
    });
    if (little_cluster_) {
        little_cluster_->SetPreChangeListener([this] { IntegrateToNow(); });
        little_cluster_->SetPostChangeListener([this] {
            RecomputeRates();
            RescheduleBoundary();
        });
    }
    bus_.SetPreChangeListener([this] { IntegrateToNow(); });
    bus_.SetPostChangeListener([this] {
        RecomputeRates();
        RescheduleBoundary();
    });
    gpu_.SetPreChangeListener([this] { IntegrateToNow(); });
    gpu_.SetPostChangeListener([this] {
        RecomputeRates();
        RescheduleBoundary();
    });

    cpu_governor_node_ = sysfs_.Open(cpufreq_root + "/scaling_governor");
    bw_governor_node_ = sysfs_.Open(std::string(kDevfreqSysfsRoot) + "/governor");
    gpu_governor_node_ = sysfs_.Open(std::string(kGpuSysfsRoot) + "/governor");
    cpu_setspeed_node_ =
        sysfs_.Open(cpufreq_root + "/scaling_setspeed");
    bw_setfreq_node_ =
        sysfs_.Open(std::string(kDevfreqSysfsRoot) + "/userspace/set_freq");
    if (little_cpufreq_) {
        const std::string little_root =
            CpufreqPolicyRoot(topology_.little().first_cpu);
        little_governor_node_ = sysfs_.Open(little_root + "/scaling_governor");
        little_setspeed_node_ = sysfs_.Open(little_root + "/scaling_setspeed");
    }

    last_update_ = sim_.Now();
    RecomputeRates();
    RescheduleBoundary();
}

Device::~Device() = default;

void
Device::LaunchApp(const AppSpec& spec)
{
    IntegrateToNow();
    Rng seeder(config_.seed ^ 0x9e3779b97f4a7c15ULL);
    foreground_ = std::make_unique<AppModel>(spec, seeder.NextU64());
    RecomputeRates();
    RescheduleBoundary();
}

void
Device::SetBackground(const BackgroundEnv& env)
{
    IntegrateToNow();
    background_env_ = env;
    Rng seeder(config_.seed ^ 0xc2b2ae3d27d4eb4fULL);
    background_ = std::make_unique<AppModel>(env.spec, seeder.NextU64());
    loadavg_.set_resident_tasks(env.resident_tasks);
    RecomputeRates();
    RescheduleBoundary();
}

void
Device::UseDefaultGovernors()
{
    sysfs_.Write(cpu_governor_node_, "interactive");
    if (little_cpufreq_) {
        sysfs_.Write(little_governor_node_, "interactive");
    }
    sysfs_.Write(bw_governor_node_, "cpubw_hwmon");
    sysfs_.Write(gpu_governor_node_, "msm-adreno-tz");
}

void
Device::EnableMpdecision(MpdecisionParams params)
{
    mpdecision_ = std::make_unique<Mpdecision>(&sim_, &cluster_, &load_meter_,
                                               params);
    if (little_cluster_) {
        mpdecision_->AddCluster(&*little_cluster_, &little_load_meter_);
    }
    mpdecision_->SetSyncHook([this] { IntegrateToNow(); });
    mpdecision_->Start();
}

void
Device::DisableMpdecision()
{
    if (mpdecision_) {
        mpdecision_->Stop();
        mpdecision_.reset();
    }
}

void
Device::EnableInputBoost(InputBoostParams params)
{
    // The cpu_boost module parameter node only exists on kernels built with
    // the driver (the paper's build compiles it out), so probe it instead of
    // asserting; absent or unparsable, the params' default floor stands.
    // aeo-lint: allow(sysfs-literal) -- optional module node, single probe site.
    const std::string raw = sysfs_.ReadOrDefault(
        "/sys/module/cpu_boost/parameters/input_boost_freq", "");
    long long khz = 0;
    if (!raw.empty() && ParseInt64(raw, &khz) && khz > 0) {
        params.boost_freq = Gigahertz(static_cast<double>(khz) / 1e6);
    }
    input_boost_ = std::make_unique<InputBoost>(&sim_, cpufreq_.get(), params);
}

void
Device::NotifyTouch()
{
    if (input_boost_) {
        input_boost_->OnTouch();
    }
}

void
Device::EnableThermal(ThermalParams thermal_params, MsmThermalParams msm_params)
{
    AEO_ASSERT(thermal_ == nullptr, "thermal subsystem enabled twice");
    Sync();
    thermal_ = std::make_unique<ThermalModel>(thermal_params);
    msm_thermal_ = std::make_unique<MsmThermal>(&sim_, cpufreq_.get(),
                                                thermal_.get(), &sysfs_,
                                                msm_params);
    msm_thermal_->SetSyncHook([this] { IntegrateToNow(); });
    msm_thermal_->Start();
    // Temperature now feeds leakage, so rates must reflect the new inputs.
    RecomputeRates();
    RescheduleBoundary();
}

void
Device::UseUserspaceGovernors()
{
    sysfs_.Write(cpu_governor_node_, "userspace");
    if (little_cpufreq_) {
        sysfs_.Write(little_governor_node_, "userspace");
    }
    sysfs_.Write(bw_governor_node_, "userspace");
}

void
Device::PinConfiguration(int cpu_level, int bw_level)
{
    UseUserspaceGovernors();
    const long long khz =
        std::llround(cluster_.table().FrequencyAt(cpu_level).kilohertz());
    const long long mbps =
        std::llround(bus_.table().BandwidthAt(bw_level).value());
    sysfs_.Write(cpu_setspeed_node_, StrFormat("%lld", khz));
    sysfs_.Write(bw_setfreq_node_, StrFormat("%lld", mbps));
}

void
Device::PinHetConfiguration(const HetConfig& config)
{
    if (!little_cpufreq_) {
        AEO_ASSERT(config.little_level == 0 &&
                       config.placement == ThreadPlacement::kBigOnly,
                   "heterogeneous config %s on a homogeneous device",
                   config.ToString().c_str());
        PinConfiguration(config.big_level, config.bw_level);
        return;
    }
    UseUserspaceGovernors();
    const long long big_khz = std::llround(
        cluster_.table().FrequencyAt(config.big_level).kilohertz());
    const long long little_khz = std::llround(little_cluster_->table()
                                                  .FrequencyAt(config.little_level)
                                                  .kilohertz());
    const long long mbps =
        std::llround(bus_.table().BandwidthAt(config.bw_level).value());
    sysfs_.Write(cpu_setspeed_node_, StrFormat("%lld", big_khz));
    sysfs_.Write(little_setspeed_node_, StrFormat("%lld", little_khz));
    sysfs_.Write(bw_setfreq_node_, StrFormat("%lld", mbps));
    SetThreadPlacement(config.placement);
}

void
Device::SetThreadPlacement(ThreadPlacement placement)
{
    const std::vector<ThreadPlacement> admissible =
        topology_.AdmissiblePlacements();
    AEO_ASSERT(std::find(admissible.begin(), admissible.end(), placement) !=
                   admissible.end(),
               "placement '%s' not admissible on this topology",
               ThreadPlacementName(placement).c_str());
    if (placement == placement_) {
        return;
    }
    IntegrateToNow();
    placement_ = placement;
    RecomputeRates();
    RescheduleBoundary();
}

void
Device::RunFor(SimTime duration)
{
    if (!monitor_started_) {
        monitor_->Start();
        monitor_started_ = true;
    }
    sim_.RunUntil(sim_.Now() + duration);
    Sync();
}

void
Device::RunUntilAppFinishes(SimTime max_duration)
{
    AEO_ASSERT(foreground_ != nullptr, "no foreground app launched");
    if (!monitor_started_) {
        monitor_->Start();
        monitor_started_ = true;
    }
    stop_when_app_finishes_ = true;
    sim_.RunUntil(sim_.Now() + max_duration);
    stop_when_app_finishes_ = false;
    Sync();
    if (!foreground_->Finished()) {
        Warn("app '%s' did not finish within %.1f s", foreground_->name().c_str(),
             max_duration.seconds());
    }
}

// aeo: hot-path
Milliwatts
Device::CurrentPower() const
{
    const double overhead_mw =
        perf_->power_overhead_mw() + controller_overhead_mw_;
    if (power_cache_valid_ && overhead_mw == power_cache_overhead_mw_) {
        return power_cache_;
    }
    PowerInputs inputs;
    inputs.cpu_freq = cluster_.frequency();
    inputs.cpu_voltage = cluster_.voltage();
    inputs.online_cores = cluster_.online_cores();
    inputs.busy_cores = big_busy_cores_;
    inputs.cpu_dyn_scale = topology_.primary().dyn_power_scale;
    inputs.cpu_leak_scale = topology_.primary().leak_power_scale;
    if (little_cluster_) {
        inputs.has_little = true;
        inputs.little_freq = little_cluster_->frequency();
        inputs.little_voltage = little_cluster_->voltage();
        inputs.little_online = little_cluster_->online_cores();
        inputs.little_busy = little_busy_cores_;
        inputs.little_dyn_scale = topology_.little().dyn_power_scale;
        inputs.little_leak_scale = topology_.little().leak_power_scale;
    }
    inputs.bw_level = bus_.level();
    inputs.mem_gbps = mem_gbps_;
    double component = 0.0;
    if (foreground_ != nullptr) {
        component += foreground_->CurrentComponentPower();
    }
    component += background_->CurrentComponentPower();
    inputs.app_component_mw = component;
    inputs.gpu_mhz = gpu_.mhz();
    inputs.gpu_voltage = gpu_.voltage();
    inputs.gpu_busy = gpu_busy_;
    inputs.overhead_mw = overhead_mw;
    inputs.temp_c = thermal_ != nullptr ? thermal_->temperature_c()
                                        : kLeakageReferenceC;
    power_cache_ = power_model_.TotalPower(inputs);
    power_cache_overhead_mw_ = overhead_mw;
    power_cache_valid_ = true;
    return power_cache_;
}

void
Device::SetControllerOverheadPower(double mw)
{
    AEO_ASSERT(mw >= 0.0, "negative overhead power");
    IntegrateToNow();
    controller_overhead_mw_ = mw;
    RecomputeRates();
    RescheduleBoundary();
}

void
Device::Sync()
{
    IntegrateToNow();
    RecomputeRates();
    RescheduleBoundary();
}

void
Device::IntegrateToNow()
{
    if (in_integrate_) {
        return;
    }
    in_integrate_ = true;
    const SimTime now = sim_.Now();
    const SimTime dt = now - last_update_;
    AEO_ASSERT(dt >= SimTime::Zero(), "time went backwards");
    if (dt > SimTime::Zero()) {
        const Seconds seconds = dt.ToSeconds();
        // Power is evaluated once at the segment's entry temperature and
        // held constant across it — consistent for both energy and heat.
        const Milliwatts power = CurrentPower();
        energy_meter_.Accumulate(power, dt);
        if (thermal_ != nullptr) {
            thermal_->Advance(power, dt);
        }
        cpu_residency_.Add(static_cast<size_t>(cluster_.level()), seconds.value());
        bw_residency_.Add(static_cast<size_t>(bus_.level()), seconds.value());
        gpu_residency_.Add(static_cast<size_t>(gpu_.level()), seconds.value());
        gpu_meter_.Advance(gpu_busy_, dt);
        load_meter_.Advance(big_busy_cores_, max_core_load_, dt);
        if (little_cluster_) {
            little_residency_.Add(static_cast<size_t>(little_cluster_->level()),
                                  seconds.value());
            little_load_meter_.Advance(little_busy_cores_,
                                       little_max_core_load_, dt);
        }
        traffic_meter_.Advance(mem_gbps_, dt);
        pmu_.Advance(fg_gips_, cluster_.frequency().value(), busy_cores_,
                     mem_gbps_, dt);
        loadavg_.Advance(busy_cores_, dt);
        if (foreground_ != nullptr) {
            foreground_->Advance(dt, fg_gips_ * seconds.value());
        }
        background_->Advance(dt, bg_gips_ * seconds.value());
        last_update_ = now;
        // Temperature and app phases advanced; the memoized power is stale.
        power_cache_valid_ = false;
    }
    in_integrate_ = false;
    MaybeFinish();
}

void
Device::RecomputeRates()
{
    WorkloadDemand fg_demand = IdleDemand();
    if (foreground_ != nullptr && !foreground_->Finished()) {
        fg_demand = foreground_->CurrentDemand();
        fg_demand.mem_bytes_per_instr *=
            background_env_.fg_mem_intensity_multiplier;
    }
    const WorkloadDemand bg_demand = background_->CurrentDemand();

    // Instrumentation steals a slice of foreground compute (§V-A1: the perf
    // tool costs ~4 % at a 1 s sampling period).
    const double overhead = perf_->cpu_overhead_fraction();

    if (little_cluster_) {
        ClusterOperatingPoint big;
        big.frequency = cluster_.frequency();
        big.perf_scale = topology_.primary().perf_scale;
        big.online_cores = cluster_.online_cores();
        ClusterOperatingPoint little;
        little.frequency = little_cluster_->frequency();
        little.perf_scale = topology_.little().perf_scale;
        little.online_cores = little_cluster_->online_cores();

        const HetExecutionRates het = engine_.ComputeSharedHet(
            fg_demand, bg_demand, big, little, placement_,
            topology_.placement_model().span_penalty, bus_.bandwidth());
        fg_gips_ = het.foreground.gips * (1.0 - overhead);
        bg_gips_ = het.background.gips;
        busy_cores_ = het.big_busy_cores + het.little_busy_cores;
        big_busy_cores_ = het.big_busy_cores;
        little_busy_cores_ = het.little_busy_cores;
        mem_gbps_ = het.foreground.mem_gbps + het.background.mem_gbps;
        max_core_load_ = het.big_max_core_load;
        little_max_core_load_ = het.little_max_core_load;
    } else {
        const SharedExecutionRates rates = engine_.ComputeShared(
            fg_demand, bg_demand, cluster_.frequency(), bus_.bandwidth(),
            cluster_.online_cores());

        fg_gips_ = rates.foreground.gips * (1.0 - overhead);
        bg_gips_ = rates.background.gips;
        busy_cores_ = rates.foreground.busy_cores + rates.background.busy_cores;
        big_busy_cores_ = busy_cores_;
        little_busy_cores_ = 0.0;
        mem_gbps_ = rates.foreground.mem_gbps + rates.background.mem_gbps;

        // The busiest core's utilization: a workload's active cores each run
        // at gips/capacity (1.0 when compute-saturated). interactive keys
        // off this.
        const auto core_load = [](const ExecutionRates& rates_for) {
            if (rates_for.capacity_gips <= 0.0) {
                return 0.0;
            }
            const double load = rates_for.gips / rates_for.capacity_gips;
            return load > 1.0 ? 1.0 : load;
        };
        max_core_load_ =
            std::max(core_load(rates.foreground), core_load(rates.background));
        little_max_core_load_ = 0.0;
    }
    power_cache_valid_ = false;

    // GPU demand follows the foreground's progress (render work per Gi).
    // When the GPU cannot keep up it co-bottlenecks the application.
    gpu_busy_ = 0.0;
    if (foreground_ != nullptr && !foreground_->Finished()) {
        const double units_per_gi = foreground_->CurrentGpuUnitsPerGi();
        if (units_per_gi > 0.0 && fg_gips_ > 0.0) {
            const double demand_units = fg_gips_ * units_per_gi;
            const double capacity = gpu_.CapacityAt(gpu_.level());
            if (demand_units > capacity) {
                fg_gips_ *= capacity / demand_units;
                gpu_busy_ = 1.0;
            } else {
                gpu_busy_ = demand_units / capacity;
            }
        }
    }
}

void
Device::RescheduleBoundary()
{
    if (boundary_event_ != kInvalidEventId) {
        sim_.Cancel(boundary_event_);
        boundary_event_ = kInvalidEventId;
    }
    std::optional<SimTime> next;
    if (foreground_ != nullptr) {
        next = foreground_->TimeToBoundary(fg_gips_);
    }
    const std::optional<SimTime> bg_next = background_->TimeToBoundary(bg_gips_);
    if (bg_next && (!next || *bg_next < *next)) {
        next = bg_next;
    }
    if (!next) {
        return;
    }
    const SimTime delay = std::max(*next, SimTime::Micros(1));
    boundary_event_ = sim_.ScheduleAfter(delay, [this] { OnBoundary(); });
}

void
Device::OnBoundary()
{
    boundary_event_ = kInvalidEventId;
    IntegrateToNow();
    RecomputeRates();
    RescheduleBoundary();
}

void
Device::MaybeFinish()
{
    if (stop_when_app_finishes_ && foreground_ != nullptr &&
        foreground_->Finished()) {
        sim_.Stop();
    }
}

RunResult
Device::CollectResult(const std::string& policy_name) const
{
    RunResult result;
    result.app_name = foreground_ != nullptr ? foreground_->name() : "<none>";
    result.load_name = ToString(background_env_.kind);
    result.policy_name = policy_name;

    result.energy_j = energy_meter_.energy().value();
    result.avg_power_mw = energy_meter_.AveragePower();
    if (monitor_->sample_count() > 0) {
        result.measured_energy_j = monitor_->MeasuredEnergy().value();
        result.measured_avg_power_mw = monitor_->MeasuredAveragePower();
    } else {
        result.measured_energy_j = result.energy_j;
        result.measured_avg_power_mw = result.avg_power_mw;
    }

    result.duration_s = energy_meter_.elapsed().seconds();
    if (foreground_ != nullptr) {
        result.executed_gi = foreground_->total_executed_gi();
        const double elapsed = foreground_->total_elapsed().seconds();
        result.avg_gips = elapsed > 0.0 ? result.executed_gi / elapsed : 0.0;
        result.app_finished = foreground_->Finished();
    }

    result.cpu_residency = cpu_residency_.Fractions();
    result.bw_residency = bw_residency_.Fractions();
    result.gpu_residency = gpu_residency_.Fractions();
    result.cpu_transitions = cluster_.transition_count();
    result.bw_transitions = bus_.transition_count();
    if (little_cluster_) {
        result.little_residency = little_residency_.Fractions();
        result.little_transitions = little_cluster_->transition_count();
    }
    result.loadavg = loadavg_.value();
    return result;
}

}  // namespace aeo
