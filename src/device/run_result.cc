#include "device/run_result.h"

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

double
RunResult::PerformanceDeltaPercent(const RunResult& baseline) const
{
    if (app_finished && baseline.app_finished) {
        // Deadline-critical batch work: faster completion = better.
        AEO_ASSERT(duration_s > 0.0 && baseline.duration_s > 0.0, "empty run");
        return (baseline.duration_s - duration_s) / baseline.duration_s * 100.0;
    }
    AEO_ASSERT(baseline.avg_gips > 0.0, "baseline with zero GIPS");
    return (avg_gips - baseline.avg_gips) / baseline.avg_gips * 100.0;
}

double
RunResult::EnergySavingsPercent(const RunResult& baseline) const
{
    AEO_ASSERT(baseline.measured_energy_j > 0.0, "baseline with zero energy");
    return (baseline.measured_energy_j - measured_energy_j) /
           baseline.measured_energy_j * 100.0;
}

std::string
RunResult::Summary() const
{
    return StrFormat(
        "%s [%s, %s]: %.1f s, %.3f GIPS, %.0f mW avg, %.1f J%s",
        app_name.c_str(), policy_name.c_str(), load_name.c_str(), duration_s,
        avg_gips, measured_avg_power_mw.value(), measured_energy_j,
        app_finished ? " (completed)" : "");
}

}  // namespace aeo
