/**
 * @file
 * The complete simulated phone: SoC + power model + Monsoon monitor +
 * kernel subsystems (sysfs, cpufreq, devfreq, PMU, perf, loadavg) + the
 * foreground application and background load.
 *
 * The device is the *plant* of the paper's feedback loop (Fig. 2). It keeps
 * all activity rates piecewise-constant and integrates state exactly between
 * events:
 *
 *  - any frequency/bandwidth change first integrates the elapsed segment at
 *    the old rates, applies the change, then recomputes rates;
 *  - application phase boundaries are predicted from the current rates and
 *    scheduled as events, so integration segments never straddle a demand
 *    change;
 *  - the 5 kHz power monitor, governor timers and perf sampling are ordinary
 *    events on the same queue.
 *
 * A Device is built fresh per experiment run (cheap) so every run is
 * deterministic for a given seed.
 */
#ifndef AEO_DEVICE_DEVICE_H_
#define AEO_DEVICE_DEVICE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/app_model.h"
#include "apps/background_load.h"
#include "device/run_result.h"
#include "fault/fault_injector.h"
#include "kernel/cpufreq.h"
#include "kernel/devfreq.h"
#include "kernel/gpufreq.h"
#include "kernel/input_boost.h"
#include "kernel/mpdecision.h"
#include "kernel/msm_thermal.h"
#include "kernel/loadavg.h"
#include "kernel/meters.h"
#include "kernel/perf_tool.h"
#include "kernel/pmu.h"
#include "kernel/sysfs.h"
#include "kernel/sysfs_roots.h"
#include "power/energy_meter.h"
#include "power/monsoon.h"
#include "power/power_model.h"
#include "sim/simulator.h"
#include "soc/cluster_topology.h"
#include "soc/cpu_cluster.h"
#include "soc/execution_engine.h"
#include "soc/gpu_domain.h"
#include "soc/memory_bus.h"
#include "soc/thermal_model.h"
#include "stats/histogram.h"

namespace aeo {

/** Construction parameters for a Device. */
struct DeviceConfig {
    /** Master seed; all component streams fork from it. */
    uint64_t seed = 1;
    /** Execution-model constants. */
    ExecutionModelParams exec_params;
    /** Power-model constants (defaults to the calibrated Nexus 6 set). */
    PowerModelParams power_params = MakeNexus6PowerParams();
    /**
     * Cluster topology. Absent (the default) builds the historical
     * single-cluster Nexus 6 — bit-identical to builds predating the
     * topology parameter. A two-cluster topology adds a LITTLE frequency
     * domain with its own cpufreq policy (.../cpufreq/policyN), load meter
     * and governors, plus the thread-placement axis.
     */
    std::optional<ClusterTopology> topology;
    /** Power-monitor setup. */
    MonsoonConfig monsoon;
    /** perf sampler setup. */
    PerfToolConfig perf;
    /**
     * Fault-injection rules (see fault/fault_injector.h). When non-empty a
     * deterministic FaultInjector — seeded independently of the component
     * RNG streams, so fault-free runs are bit-identical with or without
     * this field — is attached to the sysfs tree, the perf tool and the
     * power monitor.
     */
    std::vector<FaultRule> fault_rules;
};

/** The simulated Nexus 6. */
class Device {
  public:
    /** Builds a Nexus 6 with all stock governors registered. */
    explicit Device(DeviceConfig config = {});

    ~Device();

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    // --- Workload setup ---------------------------------------------------

    /** Installs the foreground application (replaces any previous one). */
    void LaunchApp(const AppSpec& spec);

    /** Installs a background-load environment. */
    void SetBackground(const BackgroundEnv& env);

    // --- Governor setup ---------------------------------------------------

    /** Selects the Android defaults: interactive + cpubw_hwmon. */
    void UseDefaultGovernors();

    /** Selects userspace governors on both subsystems (controller mode). */
    void UseUserspaceGovernors();

    /**
     * Enables the mpdecision hotplug daemon. The paper disables it (§IV-A:
     * hotplugging "can lead to inaccurate measurements"); it is off by
     * default and exists to demonstrate that distortion.
     */
    void EnableMpdecision(MpdecisionParams params = {});

    /** Stops hotplugging and restores all cores online. */
    void DisableMpdecision();

    /**
     * Enables the touch-event frequency boost the paper compiles out
     * (§IV-A). Off by default.
     */
    void EnableInputBoost(InputBoostParams params = {});

    /** Delivers a touch event (no-op unless input boost is enabled). */
    void NotifyTouch();

    /**
     * Enables the thermal subsystem: a lumped-RC package model heated by
     * dissipated power plus the msm_thermal driver that polls it and clamps
     * the CPU frequency table in stages. Off by default — without it the
     * device is thermally unconstrained and runs are bit-identical to
     * builds predating the subsystem. Typically paired with a non-zero
     * PowerModelParams::leak_temp_coeff_per_c so heat feeds back into
     * leakage (and thus into profile drift).
     */
    void EnableThermal(ThermalParams thermal_params = {},
                       MsmThermalParams msm_params = {});

    /** Pins a fixed configuration via the userspace governors. */
    void PinConfiguration(int cpu_level, int bw_level);

    /**
     * Pins a heterogeneous configuration: big + LITTLE frequency levels,
     * bandwidth level and thread placement, all via userspace governors.
     * On a homogeneous device little_level must be 0 and the placement
     * kBigOnly (the legacy semantics).
     */
    void PinHetConfiguration(const HetConfig& config);

    /**
     * Confines the foreground's threads (sched_setaffinity in spirit).
     * Panics if the placement is not admissible on this topology.
     */
    void SetThreadPlacement(ThreadPlacement placement);

    /** Current foreground thread placement. */
    ThreadPlacement thread_placement() const { return placement_; }

    // --- Running ----------------------------------------------------------

    /** Runs for a fixed duration of simulated time. */
    void RunFor(SimTime duration);

    /**
     * Runs until the foreground app finishes (batch apps) or @p max_duration
     * elapses, whichever is first.
     */
    void RunUntilAppFinishes(SimTime max_duration);

    /** Collects the metrics accumulated since construction. */
    RunResult CollectResult(const std::string& policy_name) const;

    // --- Component access (controller, tests, benches) ---------------------

    Simulator& sim() { return sim_; }
    Sysfs& sysfs() { return sysfs_; }
    const ClusterTopology& topology() const { return topology_; }
    CpufreqPolicy& cpufreq() { return *cpufreq_; }
    /** LITTLE-cluster cpufreq policy; nullptr on homogeneous devices. */
    CpufreqPolicy* little_cpufreq() { return little_cpufreq_.get(); }
    /** The LITTLE cluster; nullptr on homogeneous devices. */
    CpuCluster* little_cluster()
    {
        return little_cluster_ ? &*little_cluster_ : nullptr;
    }
    DevfreqPolicy& devfreq() { return *devfreq_; }
    GpuFreqPolicy& gpufreq() { return *gpufreq_; }
    GpuDomain& gpu() { return gpu_; }
    PerfTool& perf() { return *perf_; }
    const Pmu& pmu() const { return pmu_; }
    CpuCluster& cluster() { return cluster_; }
    MemoryBus& bus() { return bus_; }
    const EnergyMeter& energy_meter() const { return energy_meter_; }
    MonsoonMonitor& monitor() { return *monitor_; }
    AppModel* foreground() { return foreground_.get(); }
    const AppModel* foreground() const { return foreground_.get(); }
    double loadavg() const { return loadavg_.value(); }

    /** The fault injector, or nullptr when no fault rules were configured. */
    FaultInjector* fault_injector() { return fault_injector_.get(); }

    /** The thermal model, or nullptr unless EnableThermal was called. */
    const ThermalModel* thermal_model() const { return thermal_.get(); }

    /** The msm_thermal driver, or nullptr unless EnableThermal was called. */
    MsmThermal* msm_thermal() { return msm_thermal_.get(); }

    /** Free memory the current background environment leaves, MB — the
     * runtime load signature the §V-C extension keys on. */
    double free_memory_mb() const { return background_env_.free_memory_mb; }

    /** Current foreground instruction rate (for tests). */
    double foreground_gips() const { return fg_gips_; }

    /** Current true device power (the monitor's source). */
    Milliwatts CurrentPower() const;

    /**
     * Sets the average power the online controller's own computation draws
     * (regulator + optimizer + actuation writes; §V-A1).
     */
    void SetControllerOverheadPower(double mw);

    /**
     * Flushes integration up to the current simulated time (call before
     * reading meters outside an event).
     */
    void Sync();

  private:
    void IntegrateToNow();
    void RecomputeRates();
    void RescheduleBoundary();
    void OnBoundary();
    void MaybeFinish();

    DeviceConfig config_;
    ClusterTopology topology_;
    Simulator sim_;
    Sysfs sysfs_;
    /** Interned governor/setspeed nodes for the pinning helpers. */
    SysfsHandle cpu_governor_node_;
    SysfsHandle bw_governor_node_;
    SysfsHandle gpu_governor_node_;
    SysfsHandle cpu_setspeed_node_;
    SysfsHandle bw_setfreq_node_;
    SysfsHandle little_governor_node_;
    SysfsHandle little_setspeed_node_;

    CpuCluster cluster_;
    /** The LITTLE frequency domain; engaged only on big.LITTLE builds. */
    std::optional<CpuCluster> little_cluster_;
    MemoryBus bus_;
    GpuDomain gpu_;
    ExecutionEngine engine_;
    PowerModel power_model_;

    CpuLoadMeter load_meter_;
    CpuLoadMeter little_load_meter_;
    BusTrafficMeter traffic_meter_;
    GpuBusyMeter gpu_meter_;
    Pmu pmu_;
    LoadAvg loadavg_;

    std::unique_ptr<CpufreqPolicy> cpufreq_;
    std::unique_ptr<CpufreqPolicy> little_cpufreq_;
    std::unique_ptr<DevfreqPolicy> devfreq_;
    std::unique_ptr<GpuFreqPolicy> gpufreq_;
    std::unique_ptr<Mpdecision> mpdecision_;
    std::unique_ptr<InputBoost> input_boost_;
    std::unique_ptr<ThermalModel> thermal_;
    std::unique_ptr<MsmThermal> msm_thermal_;
    std::unique_ptr<PerfTool> perf_;
    std::unique_ptr<MonsoonMonitor> monitor_;
    std::unique_ptr<FaultInjector> fault_injector_;

    std::unique_ptr<AppModel> foreground_;
    std::unique_ptr<AppModel> background_;
    BackgroundEnv background_env_;

    EnergyMeter energy_meter_;
    Histogram cpu_residency_;
    Histogram bw_residency_;
    Histogram gpu_residency_;
    Histogram little_residency_;

    SimTime last_update_;
    double fg_gips_ = 0.0;
    double bg_gips_ = 0.0;
    double busy_cores_ = 0.0;
    double max_core_load_ = 0.0;
    /** Per-cluster splits; on homogeneous builds big == total, little == 0. */
    double big_busy_cores_ = 0.0;
    double little_busy_cores_ = 0.0;
    double little_max_core_load_ = 0.0;
    ThreadPlacement placement_ = ThreadPlacement::kBigOnly;
    double mem_gbps_ = 0.0;
    double gpu_busy_ = 0.0;
    double controller_overhead_mw_ = 0.0;

    EventId boundary_event_ = kInvalidEventId;
    bool stop_when_app_finishes_ = false;
    bool monitor_started_ = false;
    bool in_integrate_ = false;

    /**
     * Memoized CurrentPower(). Every input is piecewise-constant between
     * integration boundaries — frequencies, rates, app phases, and
     * temperature only change inside IntegrateToNow()/RecomputeRates(),
     * which invalidate the cache — except the perf-tool overhead, whose
     * live value is compared on each hit (PerfTool::Stop() has no sync
     * hook). The 5 kHz power monitor reads this ~26× per boundary, so the
     * memo removes the dominant per-sample cost without changing a single
     * returned value.
     */
    mutable bool power_cache_valid_ = false;
    mutable double power_cache_overhead_mw_ = 0.0;
    mutable Milliwatts power_cache_{0.0};
};

}  // namespace aeo

#endif  // AEO_DEVICE_DEVICE_H_
