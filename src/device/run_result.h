/**
 * @file
 * Metrics collected from one device run — the quantities the paper's
 * evaluation reports: energy, average power, runtime, GIPS, and the
 * CPU-frequency / memory-bandwidth residency histograms of Figs. 1/4/5.
 */
#ifndef AEO_DEVICE_RUN_RESULT_H_
#define AEO_DEVICE_RUN_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace aeo {

/** Outcome of one application run on the device. */
struct RunResult {
    std::string app_name;
    std::string load_name;
    std::string policy_name;

    /** Exact integrated device energy, J. */
    double energy_j = 0.0;
    /** Energy as the Monsoon monitor measured it, J. */
    double measured_energy_j = 0.0;
    /** Exact average device power. */
    Milliwatts avg_power_mw;
    /** Average power as the Monsoon monitor measured it. */
    Milliwatts measured_avg_power_mw;

    /** Wall-clock duration of the run, s. */
    double duration_s = 0.0;
    /** Average foreground performance, GIPS. */
    double avg_gips = 0.0;
    /** Foreground instructions retired, units of 1e9. */
    double executed_gi = 0.0;
    /** True when a batch app ran to completion. */
    bool app_finished = false;

    /** Fraction of time per CPU frequency level (Figs. 1 & 4). */
    std::vector<double> cpu_residency;
    /** Fraction of time per bandwidth level (Fig. 5). */
    std::vector<double> bw_residency;
    /** Fraction of time per GPU level (§VII extension). */
    std::vector<double> gpu_residency;
    /** Fraction of time per LITTLE-cluster frequency level; empty on
     * homogeneous (single-cluster) builds. */
    std::vector<double> little_residency;

    /** DVFS transition counts (overhead analysis, §V-A1). */
    uint64_t cpu_transitions = 0;
    uint64_t bw_transitions = 0;
    /** LITTLE-cluster DVFS transitions; 0 on homogeneous builds. */
    uint64_t little_transitions = 0;

    /** Final /proc/loadavg value (§V-C). */
    double loadavg = 0.0;

    /** Performance change of this run vs @p baseline, percent (+ = faster).
     *
     * Batch runs compare execution time (the paper's "deadline critical"
     * apps); paced runs compare average GIPS. */
    double PerformanceDeltaPercent(const RunResult& baseline) const;

    /** Energy savings of this run vs @p baseline, percent (+ = saves). */
    double EnergySavingsPercent(const RunResult& baseline) const;

    /** One-line human-readable summary. */
    std::string Summary() const;
};

}  // namespace aeo

#endif  // AEO_DEVICE_RUN_RESULT_H_
