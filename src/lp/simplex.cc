#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace aeo {

namespace {

/**
 * Dense simplex tableau with an explicit basis. Phase 1 minimizes the sum
 * of artificial variables; phase 2 minimizes the real objective over the
 * feasible basis found. Bland's rule guarantees termination.
 */
class Tableau {
  public:
    Tableau(const LpProblem& problem, double tol) : tol_(tol)
    {
        m_ = problem.eq_lhs.size();
        n_ = problem.objective.size();
        AEO_ASSERT(problem.eq_rhs.size() == m_, "rhs size %zu != rows %zu",
                   problem.eq_rhs.size(), m_);
        for (const auto& row : problem.eq_lhs) {
            AEO_ASSERT(row.size() == n_, "row width %zu != vars %zu", row.size(), n_);
        }

        // Columns: n real variables + m artificials; plus the rhs column.
        cols_ = n_ + m_;
        a_.assign(m_, std::vector<double>(cols_ + 1, 0.0));
        basis_.resize(m_);
        for (size_t r = 0; r < m_; ++r) {
            const double sign = problem.eq_rhs[r] < 0.0 ? -1.0 : 1.0;
            for (size_t c = 0; c < n_; ++c) {
                a_[r][c] = sign * problem.eq_lhs[r][c];
            }
            a_[r][n_ + r] = 1.0;
            a_[r][cols_] = sign * problem.eq_rhs[r];
            basis_[r] = n_ + r;
        }
    }

    /** Runs both phases; fills @p out. */
    void
    Solve(const std::vector<double>& objective, LpSolution* out)
    {
        // Phase 1: minimize sum of artificials.
        std::vector<double> phase1(cols_, 0.0);
        for (size_t c = n_; c < cols_; ++c) {
            phase1[c] = 1.0;
        }
        if (!RunPhase(phase1)) {
            // Phase 1 is always bounded (objective ≥ 0).
            AEO_PANIC("phase-1 simplex reported unbounded");
        }
        if (CurrentObjective(phase1) > tol_ * 10.0) {
            out->feasible = false;
            return;
        }
        DriveOutArtificials();

        // Phase 2: the real objective, artificial columns frozen.
        std::vector<double> phase2(cols_, 0.0);
        std::copy(objective.begin(), objective.end(), phase2.begin());
        frozen_from_ = n_;
        if (!RunPhase(phase2)) {
            out->unbounded = true;
            return;
        }
        out->feasible = true;
        out->objective_value = CurrentObjective(phase2);
        out->x.assign(n_, 0.0);
        for (size_t r = 0; r < m_; ++r) {
            if (basis_[r] < n_) {
                out->x[basis_[r]] = a_[r][cols_];
            }
        }
    }

  private:
    /** Reduced cost of column @p c under objective @p obj. */
    double
    ReducedCost(const std::vector<double>& obj, size_t c) const
    {
        double z = 0.0;
        for (size_t r = 0; r < m_; ++r) {
            z += obj[basis_[r]] * a_[r][c];
        }
        return obj[c] - z;
    }

    double
    CurrentObjective(const std::vector<double>& obj) const
    {
        double value = 0.0;
        for (size_t r = 0; r < m_; ++r) {
            value += obj[basis_[r]] * a_[r][cols_];
        }
        return value;
    }

    /** Runs simplex iterations; returns false if unbounded. */
    bool
    RunPhase(const std::vector<double>& obj)
    {
        // Generous iteration bound: Bland's rule terminates well within it.
        const size_t max_iters = 50 * (m_ + cols_ + 10);
        for (size_t iter = 0; iter < max_iters; ++iter) {
            // Bland: entering column = lowest index with negative cost.
            size_t enter = cols_;
            for (size_t c = 0; c < cols_; ++c) {
                if (c >= frozen_from_ && !InBasis(c)) {
                    continue;  // artificial columns may not re-enter
                }
                if (InBasis(c)) {
                    continue;
                }
                if (ReducedCost(obj, c) < -tol_) {
                    enter = c;
                    break;
                }
            }
            if (enter == cols_) {
                return true;  // optimal
            }
            // Ratio test, Bland tie-break on basis index.
            size_t leave = m_;
            double best_ratio = std::numeric_limits<double>::infinity();
            for (size_t r = 0; r < m_; ++r) {
                if (a_[r][enter] > tol_) {
                    const double ratio = a_[r][cols_] / a_[r][enter];
                    if (ratio < best_ratio - tol_ ||
                        (std::fabs(ratio - best_ratio) <= tol_ && leave < m_ &&
                         basis_[r] < basis_[leave])) {
                        best_ratio = ratio;
                        leave = r;
                    }
                }
            }
            if (leave == m_) {
                return false;  // unbounded
            }
            Pivot(leave, enter);
        }
        AEO_PANIC("simplex failed to terminate");
    }

    bool
    InBasis(size_t c) const
    {
        return std::find(basis_.begin(), basis_.end(), c) != basis_.end();
    }

    void
    Pivot(size_t leave_row, size_t enter_col)
    {
        const double pivot = a_[leave_row][enter_col];
        AEO_ASSERT(std::fabs(pivot) > tol_ / 10.0, "degenerate pivot %g", pivot);
        for (double& value : a_[leave_row]) {
            value /= pivot;
        }
        for (size_t r = 0; r < m_; ++r) {
            if (r == leave_row) {
                continue;
            }
            const double factor = a_[r][enter_col];
            if (factor == 0.0) {
                continue;
            }
            for (size_t c = 0; c <= cols_; ++c) {
                a_[r][c] -= factor * a_[leave_row][c];
            }
        }
        basis_[leave_row] = enter_col;
    }

    /** Pivots any basic artificial with a usable real column out. */
    void
    DriveOutArtificials()
    {
        for (size_t r = 0; r < m_; ++r) {
            if (basis_[r] < n_) {
                continue;
            }
            for (size_t c = 0; c < n_; ++c) {
                if (!InBasis(c) && std::fabs(a_[r][c]) > tol_) {
                    Pivot(r, c);
                    break;
                }
            }
        }
    }

    double tol_;
    size_t m_ = 0;
    size_t n_ = 0;
    size_t cols_ = 0;
    size_t frozen_from_ = std::numeric_limits<size_t>::max();
    std::vector<std::vector<double>> a_;
    std::vector<size_t> basis_;
};

}  // namespace

LpSolution
SolveSimplex(const LpProblem& problem, double tolerance)
{
    AEO_ASSERT(!problem.objective.empty(), "LP with no variables");
    AEO_ASSERT(!problem.eq_lhs.empty(), "LP with no constraints");
    LpSolution solution;
    Tableau tableau(problem, tolerance);
    tableau.Solve(problem.objective, &solution);
    return solution;
}

}  // namespace aeo
