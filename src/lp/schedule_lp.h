/**
 * @file
 * Builder for the paper's energy-minimization linear program
 * (§III-B3, equations (4)–(7)):
 *
 *     min   uᵀ·P                      (4)  energy objective
 *     s.t.  Sᵀ·u = s_n · T            (5)  performance constraint
 *           1ᵀ·u = T                  (6)  cycle-budget constraint
 *           0 ≤ u ≤ T                 (7)
 *
 * where u is the per-configuration dwell-time vector, S and P the profiled
 * speedup and power vectors, s_n the required speedup and T the control
 * cycle duration. The upper bounds u ≤ T are implied by (6) and u ≥ 0, so
 * the program maps directly onto the standard-form simplex solver.
 */
#ifndef AEO_LP_SCHEDULE_LP_H_
#define AEO_LP_SCHEDULE_LP_H_

#include <vector>

#include "lp/simplex.h"

namespace aeo {

/** Builds the LP (4)–(7) over the given speedup/power columns. */
LpProblem BuildScheduleLp(const std::vector<double>& speedups,
                          const std::vector<double>& powers,
                          double required_speedup, double cycle_seconds);

/**
 * Solves the schedule LP with the general simplex solver.
 *
 * @return per-configuration dwell times (seconds); infeasible → empty
 *         solution with feasible=false.
 */
LpSolution SolveScheduleLp(const std::vector<double>& speedups,
                           const std::vector<double>& powers,
                           double required_speedup, double cycle_seconds);

}  // namespace aeo

#endif  // AEO_LP_SCHEDULE_LP_H_
