/**
 * @file
 * A dense two-phase primal simplex solver for small linear programs in
 * standard equality form:
 *
 *     minimize    c·x
 *     subject to  A x = b,   x ≥ 0.
 *
 * The paper's energy optimizer (§III-B3, equations (4)–(7)) is exactly such
 * a program with two equality rows and N ≤ 234 variables, so a dense
 * tableau with Bland's anti-cycling rule is more than sufficient. The
 * specialized convex-hull optimizer in core/ is cross-checked against this
 * solver by property tests.
 */
#ifndef AEO_LP_SIMPLEX_H_
#define AEO_LP_SIMPLEX_H_

#include <vector>

namespace aeo {

/** An LP in standard equality form (b may be any sign; rows are scaled). */
struct LpProblem {
    /** Objective coefficients c (length n). */
    std::vector<double> objective;
    /** Equality constraint matrix A, row-major (m rows of length n). */
    std::vector<std::vector<double>> eq_lhs;
    /** Right-hand side b (length m). */
    std::vector<double> eq_rhs;
};

/** Result of a simplex solve. */
struct LpSolution {
    /** True iff a feasible optimum was found. */
    bool feasible = false;
    /** True if the LP is unbounded below (then x/objective are invalid). */
    bool unbounded = false;
    /** Optimal objective value. */
    double objective_value = 0.0;
    /** An optimal vertex. */
    std::vector<double> x;
};

/**
 * Solves the LP with two-phase simplex.
 *
 * @param problem  The program; panics on inconsistent dimensions.
 * @param tolerance Pivoting / feasibility tolerance.
 */
LpSolution SolveSimplex(const LpProblem& problem, double tolerance = 1e-9);

}  // namespace aeo

#endif  // AEO_LP_SIMPLEX_H_
