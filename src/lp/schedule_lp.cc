#include "lp/schedule_lp.h"

#include "common/logging.h"

namespace aeo {

LpProblem
BuildScheduleLp(const std::vector<double>& speedups, const std::vector<double>& powers,
                double required_speedup, double cycle_seconds)
{
    AEO_ASSERT(!speedups.empty(), "empty speedup vector");
    AEO_ASSERT(speedups.size() == powers.size(), "speedup/power size mismatch: %zu vs %zu",
               speedups.size(), powers.size());
    AEO_ASSERT(cycle_seconds > 0.0, "cycle duration must be positive");

    LpProblem problem;
    problem.objective = powers;                      // (4): min uᵀ·P
    problem.eq_lhs.push_back(speedups);              // (5): Sᵀ·u = s_n·T
    problem.eq_rhs.push_back(required_speedup * cycle_seconds);
    problem.eq_lhs.emplace_back(speedups.size(), 1.0);  // (6): 1ᵀ·u = T
    problem.eq_rhs.push_back(cycle_seconds);
    return problem;
}

LpSolution
SolveScheduleLp(const std::vector<double>& speedups, const std::vector<double>& powers,
                double required_speedup, double cycle_seconds)
{
    return SolveSimplex(
        BuildScheduleLp(speedups, powers, required_speedup, cycle_seconds));
}

}  // namespace aeo
