#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace aeo {

namespace {

/** Shortest %.17g-style rendering that round-trips the double. */
std::string
FormatNumber(double value)
{
    AEO_ASSERT(std::isfinite(value), "JSON numbers must be finite");
    // Integers (the common case: seeds, cycle counts) print without a
    // fractional part so diffs stay readable.
    if (value == static_cast<double>(static_cast<long long>(value)) &&
        std::fabs(value) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
        return buf;
    }
    // Find the shortest precision that round-trips.
    for (int precision = 1; precision <= 17; ++precision) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value) {
            return buf;
        }
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

void
EscapeInto(const std::string& text, std::string* out)
{
    out->push_back('"');
    for (const char c : text) {
        switch (c) {
        case '"':
            *out += "\\\"";
            break;
        case '\\':
            *out += "\\\\";
            break;
        case '\n':
            *out += "\\n";
            break;
        case '\r':
            *out += "\\r";
            break;
        case '\t':
            *out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                *out += buf;
            } else {
                out->push_back(c);
            }
        }
    }
    out->push_back('"');
}

}  // namespace

JsonValue
JsonValue::MakeArray()
{
    JsonValue value;
    value.type_ = Type::kArray;
    return value;
}

JsonValue
JsonValue::MakeObject()
{
    JsonValue value;
    value.type_ = Type::kObject;
    return value;
}

bool
JsonValue::AsBool() const
{
    AEO_ASSERT(is_bool(), "JSON value is not a bool");
    return bool_;
}

double
JsonValue::AsDouble() const
{
    AEO_ASSERT(is_number(), "JSON value is not a number");
    return number_;
}

int64_t
JsonValue::AsInt64() const
{
    return static_cast<int64_t>(AsDouble());
}

uint64_t
JsonValue::AsUint64() const
{
    return static_cast<uint64_t>(AsDouble());
}

const std::string&
JsonValue::AsString() const
{
    AEO_ASSERT(is_string(), "JSON value is not a string");
    return string_;
}

const std::vector<JsonValue>&
JsonValue::items() const
{
    AEO_ASSERT(is_array(), "JSON value is not an array");
    return items_;
}

void
JsonValue::Append(JsonValue value)
{
    AEO_ASSERT(is_array(), "JSON value is not an array");
    items_.push_back(std::move(value));
}

const std::vector<JsonValue::Member>&
JsonValue::members() const
{
    AEO_ASSERT(is_object(), "JSON value is not an object");
    return members_;
}

void
JsonValue::Set(const std::string& key, JsonValue value)
{
    AEO_ASSERT(is_object(), "JSON value is not an object");
    for (Member& member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return;
        }
    }
    members_.emplace_back(key, std::move(value));
}

bool
JsonValue::Has(const std::string& key) const
{
    AEO_ASSERT(is_object(), "JSON value is not an object");
    for (const Member& member : members_) {
        if (member.first == key) {
            return true;
        }
    }
    return false;
}

const JsonValue&
JsonValue::At(const std::string& key) const
{
    AEO_ASSERT(is_object(), "JSON value is not an object");
    for (const Member& member : members_) {
        if (member.first == key) {
            return member.second;
        }
    }
    Fatal("JSON object has no member '%s'", key.c_str());
}

double
JsonValue::GetDouble(const std::string& key, double fallback) const
{
    return Has(key) ? At(key).AsDouble() : fallback;
}

bool
JsonValue::GetBool(const std::string& key, bool fallback) const
{
    return Has(key) ? At(key).AsBool() : fallback;
}

std::string
JsonValue::GetString(const std::string& key, const std::string& fallback) const
{
    return Has(key) ? At(key).AsString() : fallback;
}

namespace {

void
DumpInto(const JsonValue& value, int indent, int depth, std::string* out)
{
    const std::string pad =
        indent > 0 ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                   : std::string();
    const std::string close_pad =
        indent > 0 ? std::string(static_cast<size_t>(indent * depth), ' ')
                   : std::string();
    const char* newline = indent > 0 ? "\n" : "";
    const char* colon = indent > 0 ? ": " : ":";

    switch (value.type()) {
    case JsonValue::Type::kNull:
        *out += "null";
        return;
    case JsonValue::Type::kBool:
        *out += value.AsBool() ? "true" : "false";
        return;
    case JsonValue::Type::kNumber:
        *out += FormatNumber(value.AsDouble());
        return;
    case JsonValue::Type::kString:
        EscapeInto(value.AsString(), out);
        return;
    case JsonValue::Type::kArray: {
        if (value.items().empty()) {
            *out += "[]";
            return;
        }
        *out += "[";
        *out += newline;
        for (size_t i = 0; i < value.items().size(); ++i) {
            *out += pad;
            DumpInto(value.items()[i], indent, depth + 1, out);
            if (i + 1 < value.items().size()) {
                *out += ",";
            }
            *out += newline;
        }
        *out += close_pad;
        *out += "]";
        return;
    }
    case JsonValue::Type::kObject: {
        if (value.members().empty()) {
            *out += "{}";
            return;
        }
        *out += "{";
        *out += newline;
        for (size_t i = 0; i < value.members().size(); ++i) {
            *out += pad;
            EscapeInto(value.members()[i].first, out);
            *out += colon;
            DumpInto(value.members()[i].second, indent, depth + 1, out);
            if (i + 1 < value.members().size()) {
                *out += ",";
            }
            *out += newline;
        }
        *out += close_pad;
        *out += "}";
        return;
    }
    }
}

/** Recursive-descent parser over a raw byte view. */
class Parser {
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonParseResult
    Parse()
    {
        JsonParseResult result;
        SkipWhitespace();
        if (!ParseValue(&result.value, &result.error)) {
            return result;
        }
        SkipWhitespace();
        if (pos_ != text_.size()) {
            result.error = Where() + "trailing characters after document";
            return result;
        }
        result.ok = true;
        return result;
    }

  private:
    std::string
    Where() const
    {
        int line = 1;
        int column = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
        char buf[48];
        std::snprintf(buf, sizeof(buf), "line %d, column %d: ", line, column);
        return buf;
    }

    void
    SkipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    Literal(const char* word, JsonValue value, JsonValue* out,
            std::string* error)
    {
        const size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0) {
            *error = Where() + "invalid token";
            return false;
        }
        pos_ += len;
        *out = std::move(value);
        return true;
    }

    bool
    ParseValue(JsonValue* out, std::string* error)
    {
        if (pos_ >= text_.size()) {
            *error = Where() + "unexpected end of document";
            return false;
        }
        switch (text_[pos_]) {
        case 'n':
            return Literal("null", JsonValue(), out, error);
        case 't':
            return Literal("true", JsonValue(true), out, error);
        case 'f':
            return Literal("false", JsonValue(false), out, error);
        case '"':
            return ParseString(out, error);
        case '[':
            return ParseArray(out, error);
        case '{':
            return ParseObject(out, error);
        default:
            return ParseNumber(out, error);
        }
    }

    bool
    ParseString(JsonValue* out, std::string* error)
    {
        ++pos_;  // opening quote
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                if (pos_ + 1 >= text_.size()) {
                    break;
                }
                ++pos_;
                switch (text_[pos_]) {
                case '"':
                    c = '"';
                    break;
                case '\\':
                    c = '\\';
                    break;
                case '/':
                    c = '/';
                    break;
                case 'n':
                    c = '\n';
                    break;
                case 'r':
                    c = '\r';
                    break;
                case 't':
                    c = '\t';
                    break;
                case 'b':
                    c = '\b';
                    break;
                case 'f':
                    c = '\f';
                    break;
                case 'u': {
                    if (pos_ + 4 >= text_.size()) {
                        *error = Where() + "truncated \\u escape";
                        return false;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_ + 1 + static_cast<size_t>(i)];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            *error = Where() + "invalid \\u escape";
                            return false;
                        }
                    }
                    pos_ += 4;
                    // UTF-8 encode the code point (BMP only; the repo never
                    // serializes surrogate pairs).
                    if (code < 0x80) {
                        value.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        value.push_back(
                            static_cast<char>(0xC0 | (code >> 6)));
                        value.push_back(
                            static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        value.push_back(
                            static_cast<char>(0xE0 | (code >> 12)));
                        value.push_back(
                            static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        value.push_back(
                            static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    ++pos_;
                    continue;
                }
                default:
                    *error = Where() + "invalid escape";
                    return false;
                }
            }
            value.push_back(c);
            ++pos_;
        }
        if (pos_ >= text_.size()) {
            *error = Where() + "unterminated string";
            return false;
        }
        ++pos_;  // closing quote
        *out = JsonValue(std::move(value));
        return true;
    }

    bool
    ParseNumber(JsonValue* out, std::string* error)
    {
        const char* start = text_.c_str() + pos_;
        char* end = nullptr;
        const double value = std::strtod(start, &end);
        if (end == start) {
            *error = Where() + "invalid token";
            return false;
        }
        pos_ += static_cast<size_t>(end - start);
        *out = JsonValue(value);
        return true;
    }

    bool
    ParseArray(JsonValue* out, std::string* error)
    {
        ++pos_;  // '['
        JsonValue array = JsonValue::MakeArray();
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            *out = std::move(array);
            return true;
        }
        while (true) {
            SkipWhitespace();
            JsonValue item;
            if (!ParseValue(&item, error)) {
                return false;
            }
            array.Append(std::move(item));
            SkipWhitespace();
            if (pos_ >= text_.size()) {
                *error = Where() + "unterminated array";
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                *out = std::move(array);
                return true;
            }
            *error = Where() + "expected ',' or ']'";
            return false;
        }
    }

    bool
    ParseObject(JsonValue* out, std::string* error)
    {
        ++pos_;  // '{'
        JsonValue object = JsonValue::MakeObject();
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            *out = std::move(object);
            return true;
        }
        while (true) {
            SkipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                *error = Where() + "expected object key";
                return false;
            }
            JsonValue key;
            if (!ParseString(&key, error)) {
                return false;
            }
            SkipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                *error = Where() + "expected ':'";
                return false;
            }
            ++pos_;
            SkipWhitespace();
            JsonValue value;
            if (!ParseValue(&value, error)) {
                return false;
            }
            object.Set(key.AsString(), std::move(value));
            SkipWhitespace();
            if (pos_ >= text_.size()) {
                *error = Where() + "unterminated object";
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                *out = std::move(object);
                return true;
            }
            *error = Where() + "expected ',' or '}'";
            return false;
        }
    }

    const std::string& text_;
    size_t pos_ = 0;
};

}  // namespace

std::string
JsonValue::Dump(int indent) const
{
    std::string out;
    DumpInto(*this, indent, 0, &out);
    if (indent > 0) {
        out += "\n";
    }
    return out;
}

JsonParseResult
ParseJson(const std::string& text)
{
    return Parser(text).Parse();
}

}  // namespace aeo
