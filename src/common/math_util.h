/**
 * @file
 * Numeric helpers shared across modules: clamping, relative comparison,
 * and summary statistics over samples.
 */
#ifndef AEO_COMMON_MATH_UTIL_H_
#define AEO_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace aeo {

/** Clamps @p v to [lo, hi]. */
double Clamp(double v, double lo, double hi);

/** Linear interpolation between a and b at parameter t in [0, 1]. */
double Lerp(double a, double b, double t);

/** True if |a - b| <= tol * max(1, |a|, |b|). */
bool ApproxEqual(double a, double b, double tol = 1e-9);

/** Relative difference (b - a) / a, in percent. */
double PercentChange(double a, double b);

/** Arithmetic mean; returns 0 for an empty set. */
double Mean(const std::vector<double>& xs);

/** Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples. */
double StdDev(const std::vector<double>& xs);

/** Minimum; panics on empty input. */
double Min(const std::vector<double>& xs);

/** Maximum; panics on empty input. */
double Max(const std::vector<double>& xs);

/**
 * Percentile in [0, 100] with linear interpolation between order statistics.
 * Panics on empty input.
 */
double Percentile(std::vector<double> xs, double pct);

}  // namespace aeo

#endif  // AEO_COMMON_MATH_UTIL_H_
