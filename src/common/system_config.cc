#include "common/system_config.h"

#include "common/strings.h"

namespace aeo {

// aeo: hot-path-stop -- diagnostic rendering: builds a human-readable label
// for logs and reports, reached from hot paths only through logging.
std::string
SystemConfig::ToString() const
{
    std::string out;
    if (!controls_bandwidth()) {
        out = StrFormat("(%d, default", cpu_level + 1);
    } else {
        out = StrFormat("(%d, %d", cpu_level + 1, bw_level + 1);
    }
    if (controls_gpu()) {
        out += StrFormat(", g%d", gpu_level + 1);
    }
    if (controls_little()) {
        out += StrFormat(", l%d, p%d", little_level + 1, placement);
    }
    return out + ")";
}

}  // namespace aeo
