/**
 * @file
 * Fixed-capacity ring buffer, used for bounded measurement histories
 * (governor load windows, controller error histories).
 */
#ifndef AEO_COMMON_RING_BUFFER_H_
#define AEO_COMMON_RING_BUFFER_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace aeo {

/** Bounded FIFO of the last @c capacity values pushed. */
template <typename T>
class RingBuffer {
  public:
    explicit RingBuffer(size_t capacity) : capacity_(capacity)
    {
        AEO_ASSERT(capacity > 0, "ring buffer capacity must be positive");
        data_.reserve(capacity);
    }

    /** Appends a value, evicting the oldest if full. */
    void
    Push(const T& value)
    {
        if (data_.size() < capacity_) {
            data_.push_back(value);
        } else {
            data_[head_] = value;
            head_ = (head_ + 1) % capacity_;
        }
    }

    /** Number of stored values (≤ capacity). */
    size_t size() const { return data_.size(); }

    /** True when no values are stored. */
    bool empty() const { return data_.empty(); }

    /** True when the buffer holds capacity values. */
    bool full() const { return data_.size() == capacity_; }

    /** Maximum number of values retained. */
    size_t capacity() const { return capacity_; }

    /** Element @p i with 0 = oldest. */
    const T&
    operator[](size_t i) const
    {
        AEO_ASSERT(i < data_.size(), "ring index %zu out of %zu", i, data_.size());
        return data_[(head_ + i) % data_.size()];
    }

    /** Most recently pushed element. */
    const T&
    back() const
    {
        AEO_ASSERT(!data_.empty(), "back() on empty ring buffer");
        return (*this)[data_.size() - 1];
    }

    /** Copies contents (oldest first) into a vector. */
    std::vector<T>
    ToVector() const
    {
        std::vector<T> out;
        out.reserve(data_.size());
        for (size_t i = 0; i < data_.size(); ++i) {
            out.push_back((*this)[i]);
        }
        return out;
    }

    /** Removes all values. */
    void
    Clear()
    {
        data_.clear();
        head_ = 0;
    }

  private:
    size_t capacity_;
    size_t head_ = 0;
    std::vector<T> data_;
};

}  // namespace aeo

#endif  // AEO_COMMON_RING_BUFFER_H_
