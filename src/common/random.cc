#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace aeo {

namespace {

uint64_t
SplitMix64(uint64_t* state)
{
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
Rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto& word : state_) {
        word = SplitMix64(&sm);
    }
}

uint64_t
Rng::NextU64()
{
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
}

double
Rng::NextDouble()
{
    // 53 top bits → [0, 1) with full double precision.
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double
Rng::Uniform(double lo, double hi)
{
    AEO_ASSERT(lo <= hi, "bad uniform range [%f, %f]", lo, hi);
    return lo + (hi - lo) * NextDouble();
}

int64_t
Rng::UniformInt(int64_t lo, int64_t hi)
{
    AEO_ASSERT(lo <= hi, "bad integer range [%lld, %lld]",
               static_cast<long long>(lo), static_cast<long long>(hi));
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
        return static_cast<int64_t>(NextU64());
    }
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t draw;
    do {
        draw = NextU64();
    } while (draw >= limit);
    return lo + static_cast<int64_t>(draw % span);
}

double
Rng::NextGaussian()
{
    if (cached_gaussian_) {
        const double v = *cached_gaussian_;
        cached_gaussian_.reset();
        return v;
    }
    double u1;
    do {
        u1 = NextDouble();
    } while (u1 <= 0.0);
    const double u2 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = radius * std::sin(theta);
    return radius * std::cos(theta);
}

double
Rng::Gaussian(double mean, double stddev)
{
    return mean + stddev * NextGaussian();
}

bool
Rng::Bernoulli(double p)
{
    return NextDouble() < p;
}

double
Rng::Exponential(double mean)
{
    AEO_ASSERT(mean > 0.0, "exponential mean must be positive, got %f", mean);
    double u;
    do {
        u = NextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

Rng
Rng::Fork()
{
    return Rng(NextU64());
}

}  // namespace aeo
