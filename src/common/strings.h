/**
 * @file
 * Small string utilities: printf-style formatting into std::string,
 * splitting, trimming and joining.
 */
#ifndef AEO_COMMON_STRINGS_H_
#define AEO_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace aeo {

namespace internal {
std::string StrFormatImpl(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace internal

/**
 * Formats printf-style into a std::string.
 *
 * The format string is checked by the compiler against the arguments.
 */
// aeo: hot-path-stop -- string formatting allocates its result by design;
// hot-path callers only reach it through diagnostic or failure slow paths.
template <typename... Args>
std::string
StrFormat(const char* fmt, Args&&... args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        return internal::StrFormatImpl(fmt, std::forward<Args>(args)...);
    }
}

/** Splits @p text on @p sep, keeping empty fields. */
std::vector<std::string> Split(std::string_view text, char sep);

/** Removes leading and trailing whitespace. */
std::string Trim(std::string_view text);

/** Joins @p parts with @p sep between elements. */
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/** Returns true if @p text begins with @p prefix. */
bool StartsWith(std::string_view text, std::string_view prefix);

/** Returns true if @p text ends with @p suffix. */
bool EndsWith(std::string_view text, std::string_view suffix);

/** Parses a double; returns false on malformed input. */
bool ParseDouble(std::string_view text, double* out);

/** Parses a non-negative long; returns false on malformed input. */
bool ParseInt64(std::string_view text, long long* out);

}  // namespace aeo

#endif  // AEO_COMMON_STRINGS_H_
