/**
 * @file
 * Piecewise-linear interpolation over a 1-D table.
 *
 * Used by the offline profiler to fill in memory-bandwidth columns that were
 * not measured (§III-A: profile only the lowest and highest bandwidth per CPU
 * frequency, linearly interpolate the rest).
 */
#ifndef AEO_COMMON_INTERPOLATE_H_
#define AEO_COMMON_INTERPOLATE_H_

#include <cstddef>
#include <vector>

namespace aeo {

/** A piecewise-linear function defined by (x, y) knots with increasing x. */
class PiecewiseLinear {
  public:
    /**
     * Builds the interpolant.
     *
     * @param xs Strictly increasing abscissae (at least one).
     * @param ys Ordinates, same length as @p xs.
     */
    PiecewiseLinear(std::vector<double> xs, std::vector<double> ys);

    /**
     * Evaluates at @p x. Outside the knot range the function is clamped to
     * the boundary value (no extrapolation).
     */
    double operator()(double x) const;

    /** Number of knots. */
    size_t size() const { return xs_.size(); }

  private:
    std::vector<double> xs_;
    std::vector<double> ys_;
};

}  // namespace aeo

#endif  // AEO_COMMON_INTERPOLATE_H_
