#include "common/math_util.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aeo {

double
Clamp(double v, double lo, double hi)
{
    AEO_ASSERT(lo <= hi, "bad clamp range [%f, %f]", lo, hi);
    return std::min(hi, std::max(lo, v));
}

double
Lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

bool
ApproxEqual(double a, double b, double tol)
{
    const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= tol * scale;
}

double
PercentChange(double a, double b)
{
    AEO_ASSERT(a != 0.0, "percent change from zero baseline");
    return (b - a) / a * 100.0;
}

double
Mean(const std::vector<double>& xs)
{
    if (xs.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const double x : xs) {
        sum += x;
    }
    return sum / static_cast<double>(xs.size());
}

double
StdDev(const std::vector<double>& xs)
{
    if (xs.size() < 2) {
        return 0.0;
    }
    const double mu = Mean(xs);
    double acc = 0.0;
    for (const double x : xs) {
        acc += (x - mu) * (x - mu);
    }
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
Min(const std::vector<double>& xs)
{
    AEO_ASSERT(!xs.empty(), "Min of empty set");
    return *std::min_element(xs.begin(), xs.end());
}

double
Max(const std::vector<double>& xs)
{
    AEO_ASSERT(!xs.empty(), "Max of empty set");
    return *std::max_element(xs.begin(), xs.end());
}

double
Percentile(std::vector<double> xs, double pct)
{
    AEO_ASSERT(!xs.empty(), "Percentile of empty set");
    AEO_ASSERT(pct >= 0.0 && pct <= 100.0, "percentile %f out of range", pct);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1) {
        return xs[0];
    }
    const double rank = pct / 100.0 * static_cast<double>(xs.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, xs.size() - 1);
    return Lerp(xs[lo], xs[hi], rank - static_cast<double>(lo));
}

}  // namespace aeo
