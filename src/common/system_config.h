/**
 * @file
 * A *system configuration* (§III-A): the tuple of hardware settings the
 * controller schedules — here, CPU frequency level × memory bandwidth level,
 * exactly the paper's choice. The CPU-only controller variant (§V-D) leaves
 * the bandwidth to the default governor, expressed with kBwDefaultGovernor.
 */
#ifndef AEO_COMMON_SYSTEM_CONFIG_H_
#define AEO_COMMON_SYSTEM_CONFIG_H_

#include <compare>
#include <string>

namespace aeo {

/** Sentinel bandwidth level: leave the bus to its default governor. */
inline constexpr int kBwDefaultGovernor = -1;

/** Sentinel GPU level: leave the GPU to its default governor (the paper's
 * configuration; §VII names GPU control as the extension). */
inline constexpr int kGpuDefaultGovernor = -1;

/** Sentinel LITTLE-cluster level: no LITTLE cluster under control (the
 * homogeneous single-cluster SoC, the paper's Nexus 6). */
inline constexpr int kNoLittleCluster = -1;

/**
 * Foreground thread-placement codes, value-compatible with
 * soc/cluster_topology.h's ThreadPlacement (common sits below soc in the
 * include DAG, so the enum cannot be named here). kPlacementDefault keeps
 * the legacy semantics: all threads on the primary cluster.
 */
inline constexpr int kPlacementDefault = -1;
inline constexpr int kPlacementLittleOnly = 0;
inline constexpr int kPlacementBigOnly = 1;
inline constexpr int kPlacementBoth = 2;

/** One schedulable hardware configuration. */
struct SystemConfig {
    /** 0-based CPU frequency level (primary/big cluster). */
    int cpu_level = 0;
    /** 0-based bandwidth level, or kBwDefaultGovernor (CPU-only control). */
    int bw_level = 0;
    /** 0-based GPU level, or kGpuDefaultGovernor (the paper's setup). */
    int gpu_level = kGpuDefaultGovernor;
    /** 0-based LITTLE-cluster level, or kNoLittleCluster (homogeneous). */
    int little_level = kNoLittleCluster;
    /** Thread placement code, or kPlacementDefault (legacy big-only). */
    int placement = kPlacementDefault;

    constexpr auto operator<=>(const SystemConfig&) const = default;

    /** True when the bus is controller-managed. */
    bool controls_bandwidth() const { return bw_level != kBwDefaultGovernor; }

    /** True when the GPU is controller-managed (§VII extension). */
    bool controls_gpu() const { return gpu_level != kGpuDefaultGovernor; }

    /** True when a LITTLE cluster is controller-managed (big.LITTLE). */
    bool controls_little() const { return little_level != kNoLittleCluster; }

    /** Paper-style label, e.g. "(5, 1)" with 1-based level numbers; the GPU
     * level is appended only when controlled, e.g. "(5, 1, g3)", and the
     * LITTLE level/placement only on big.LITTLE, e.g. "(5, 1, l2, p2)". */
    std::string ToString() const;
};

}  // namespace aeo

#endif  // AEO_COMMON_SYSTEM_CONFIG_H_
