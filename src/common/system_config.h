/**
 * @file
 * A *system configuration* (§III-A): the tuple of hardware settings the
 * controller schedules — here, CPU frequency level × memory bandwidth level,
 * exactly the paper's choice. The CPU-only controller variant (§V-D) leaves
 * the bandwidth to the default governor, expressed with kBwDefaultGovernor.
 */
#ifndef AEO_COMMON_SYSTEM_CONFIG_H_
#define AEO_COMMON_SYSTEM_CONFIG_H_

#include <compare>
#include <string>

namespace aeo {

/** Sentinel bandwidth level: leave the bus to its default governor. */
inline constexpr int kBwDefaultGovernor = -1;

/** Sentinel GPU level: leave the GPU to its default governor (the paper's
 * configuration; §VII names GPU control as the extension). */
inline constexpr int kGpuDefaultGovernor = -1;

/** One schedulable hardware configuration. */
struct SystemConfig {
    /** 0-based CPU frequency level. */
    int cpu_level = 0;
    /** 0-based bandwidth level, or kBwDefaultGovernor (CPU-only control). */
    int bw_level = 0;
    /** 0-based GPU level, or kGpuDefaultGovernor (the paper's setup). */
    int gpu_level = kGpuDefaultGovernor;

    constexpr auto operator<=>(const SystemConfig&) const = default;

    /** True when the bus is controller-managed. */
    bool controls_bandwidth() const { return bw_level != kBwDefaultGovernor; }

    /** True when the GPU is controller-managed (§VII extension). */
    bool controls_gpu() const { return gpu_level != kGpuDefaultGovernor; }

    /** Paper-style label, e.g. "(5, 1)" with 1-based level numbers; the GPU
     * level is appended only when controlled, e.g. "(5, 1, g3)". */
    std::string ToString() const;
};

}  // namespace aeo

#endif  // AEO_COMMON_SYSTEM_CONFIG_H_
