/**
 * @file
 * ASCII table formatting for the benchmark harnesses, which print the same
 * rows the paper's tables report.
 */
#ifndef AEO_COMMON_TEXT_TABLE_H_
#define AEO_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace aeo {

/** Column alignment for TextTable. */
enum class Align {
    kLeft,
    kRight,
};

/** Builds fixed-width ASCII tables with a header row and rulers. */
class TextTable {
  public:
    /** Creates a table with the given column headers (left-aligned titles). */
    explicit TextTable(std::vector<std::string> header);

    /** Sets per-column alignment (default: left for col 0, right otherwise). */
    void SetAlignment(std::vector<Align> alignment);

    /** Appends a data row; must match the header width. */
    void AddRow(std::vector<std::string> row);

    /** Appends a horizontal separator at this position. */
    void AddSeparator();

    /** Renders the table. */
    std::string ToString() const;

  private:
    std::vector<std::string> header_;
    std::vector<Align> alignment_;
    // A row with the sentinel value {} marks a separator.
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace aeo

#endif  // AEO_COMMON_TEXT_TABLE_H_
