#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace aeo {

namespace internal {

std::string
StrFormatImpl(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed));
        // +1 for the terminating NUL vsnprintf always writes.
        std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

}  // namespace internal

std::vector<std::string>
Split(std::string_view text, char sep)
{
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        const size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            break;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string
Trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

std::string
Join(const std::vector<std::string>& parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) {
            out.append(sep);
        }
        out.append(parts[i]);
    }
    return out;
}

bool
StartsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool
EndsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

bool
ParseDouble(std::string_view text, double* out)
{
    const std::string buf = Trim(text);
    if (buf.empty()) {
        return false;
    }
    char* end = nullptr;
    const double value = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) {
        return false;
    }
    *out = value;
    return true;
}

bool
ParseInt64(std::string_view text, long long* out)
{
    const std::string buf = Trim(text);
    if (buf.empty()) {
        return false;
    }
    char* end = nullptr;
    const long long value = std::strtoll(buf.c_str(), &end, 10);
    if (end != buf.c_str() + buf.size()) {
        return false;
    }
    *out = value;
    return true;
}

}  // namespace aeo
