#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cctype>

namespace aeo {

namespace internal {

// aeo: hot-path-stop -- string formatting allocates its result by design;
// hot-path callers only reach it through diagnostic or failure slow paths.
std::string
StrFormatImpl(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed));
        // +1 for the terminating NUL vsnprintf always writes.
        std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

}  // namespace internal

std::vector<std::string>
Split(std::string_view text, char sep)
{
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        const size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            break;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string
Trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

std::string
Join(const std::vector<std::string>& parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) {
            out.append(sep);
        }
        out.append(parts[i]);
    }
    return out;
}

bool
StartsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool
EndsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

namespace {

/**
 * Copies @p text, stripped of surrounding whitespace, into the fixed
 * buffer @p buf as a NUL-terminated string. Returns the stripped length,
 * or 0 if the input is empty/blank or longer than the buffer holds — no
 * numeric literal the parsers accept comes anywhere near that long.
 *
 * Parsing goes through a stack buffer rather than Trim() so the numeric
 * parsers stay allocation-free: they sit on the controller's sysfs read
 * path, which runs every cycle.
 */
size_t
TrimmedToBuf(std::string_view text, char* buf, size_t buf_size)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    const size_t len = end - begin;
    if (len == 0 || len >= buf_size) {
        return 0;
    }
    std::memcpy(buf, text.data() + begin, len);
    buf[len] = '\0';
    return len;
}

}  // namespace

bool
ParseDouble(std::string_view text, double* out)
{
    char buf[64];
    const size_t len = TrimmedToBuf(text, buf, sizeof(buf));
    if (len == 0) {
        return false;
    }
    char* end = nullptr;
    const double value = std::strtod(buf, &end);
    if (end != buf + len) {
        return false;
    }
    *out = value;
    return true;
}

bool
ParseInt64(std::string_view text, long long* out)
{
    char buf[64];
    const size_t len = TrimmedToBuf(text, buf, sizeof(buf));
    if (len == 0) {
        return false;
    }
    char* end = nullptr;
    const long long value = std::strtoll(buf, &end, 10);
    if (end != buf + len) {
        return false;
    }
    *out = value;
    return true;
}

}  // namespace aeo
