#include "common/thread_pool.h"

#include "common/logging.h"

namespace aeo {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue > 0 ? max_queue : 2 * num_threads)
{
    AEO_ASSERT(num_threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Discard unstarted tasks; their futures report broken_promise.
        queue_.clear();
    }
    task_ready_.notify_all();
    space_ready_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void
ThreadPool::Enqueue(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        space_ready_.wait(lock,
                          [this] { return stopping_ || queue_.size() < max_queue_; });
        AEO_ASSERT(!stopping_, "Submit() on a stopping thread pool");
        queue_.push_back(std::move(task));
    }
    task_ready_.notify_one();
}

void
ThreadPool::WorkerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping_ and nothing left to run
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        space_ready_.notify_one();
        // Any exception is already captured in the task's promise.
        task();
    }
}

}  // namespace aeo
