/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Follows gem5's message taxonomy:
 *  - Inform(): normal operating status, no connotation of misbehaviour.
 *  - Warn():   something may not be modelled perfectly but execution can
 *              continue.
 *  - Fatal():  the run cannot continue due to a user/configuration error;
 *              throws aeo::FatalError (callers such as `main` catch it and
 *              exit(1)).
 *  - Panic():  an internal invariant was violated (a library bug); aborts.
 */
#ifndef AEO_COMMON_LOGGING_H_
#define AEO_COMMON_LOGGING_H_

#include <stdexcept>
#include <string>

#include "common/strings.h"

namespace aeo {

/** Severity of a log message. */
enum class LogLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kQuiet = 3,
};

/** Error thrown by Fatal(): unrecoverable user/configuration error. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Returns the process-wide minimum level that will be printed. */
LogLevel GetLogLevel();

/** Sets the process-wide minimum level that will be printed. */
void SetLogLevel(LogLevel level);

namespace internal {
void LogMessage(LogLevel level, const std::string& msg);
[[noreturn]] void PanicMessage(const std::string& msg, const char* file, int line);
}  // namespace internal

/** Prints an informational message (printf-style formatting). */
template <typename... Args>
void
Inform(const char* fmt, Args&&... args)
{
    internal::LogMessage(LogLevel::kInfo, StrFormat(fmt, std::forward<Args>(args)...));
}

/** Prints a debug message (printf-style formatting). */
template <typename... Args>
void
Debug(const char* fmt, Args&&... args)
{
    internal::LogMessage(LogLevel::kDebug, StrFormat(fmt, std::forward<Args>(args)...));
}

/** Prints a warning: questionable modelling, execution continues. */
template <typename... Args>
void
Warn(const char* fmt, Args&&... args)
{
    internal::LogMessage(LogLevel::kWarn, StrFormat(fmt, std::forward<Args>(args)...));
}

/** Reports an unrecoverable user/configuration error by throwing FatalError. */
template <typename... Args>
[[noreturn]] void
Fatal(const char* fmt, Args&&... args)
{
    throw FatalError(StrFormat(fmt, std::forward<Args>(args)...));
}

/** Internal-invariant failure: prints and aborts. Use via AEO_PANIC. */
#define AEO_PANIC(...) \
    ::aeo::internal::PanicMessage(::aeo::StrFormat(__VA_ARGS__), __FILE__, __LINE__)

/** Checks an internal invariant; panics with the expression text on failure. */
#define AEO_ASSERT(cond, ...)                                                      \
    do {                                                                           \
        if (!(cond)) {                                                             \
            ::aeo::internal::PanicMessage(                                         \
                std::string("assertion failed: " #cond " — ") +                    \
                    ::aeo::StrFormat("" __VA_ARGS__),                              \
                __FILE__, __LINE__);                                               \
        }                                                                          \
    } while (false)

}  // namespace aeo

#endif  // AEO_COMMON_LOGGING_H_
