#include "common/interpolate.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace aeo {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys))
{
    AEO_ASSERT(!xs_.empty(), "empty interpolation table");
    AEO_ASSERT(xs_.size() == ys_.size(), "mismatched knot arrays: %zu vs %zu",
               xs_.size(), ys_.size());
    for (size_t i = 1; i < xs_.size(); ++i) {
        AEO_ASSERT(xs_[i] > xs_[i - 1], "abscissae not strictly increasing at %zu", i);
    }
}

double
PiecewiseLinear::operator()(double x) const
{
    if (x <= xs_.front()) {
        return ys_.front();
    }
    if (x >= xs_.back()) {
        return ys_.back();
    }
    const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    const size_t hi = static_cast<size_t>(it - xs_.begin());
    const size_t lo = hi - 1;
    const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
    return Lerp(ys_[lo], ys_[hi], t);
}

}  // namespace aeo
