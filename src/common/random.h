/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Experiments must be reproducible bit-for-bit, so all stochastic components
 * (measurement noise, workload jitter, touch-event timing) draw from an
 * explicitly seeded Rng. The generator is xoshiro256**, seeded via SplitMix64.
 */
#ifndef AEO_COMMON_RANDOM_H_
#define AEO_COMMON_RANDOM_H_

#include <cstdint>
#include <optional>

namespace aeo {

/** Deterministic random number generator (xoshiro256**). */
class Rng {
  public:
    /** Constructs a generator from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t NextU64();

    /** Uniform double in [0, 1). */
    double NextDouble();

    /** Uniform double in [lo, hi). */
    double Uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int64_t UniformInt(int64_t lo, int64_t hi);

    /** Standard normal deviate (Box–Muller, cached pair). */
    double NextGaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double Gaussian(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool Bernoulli(double p);

    /** Exponentially distributed deviate with the given mean. */
    double Exponential(double mean);

    /** Derives an independent child generator (for per-component streams). */
    Rng Fork();

  private:
    uint64_t state_[4];
    std::optional<double> cached_gaussian_;
};

}  // namespace aeo

#endif  // AEO_COMMON_RANDOM_H_
