#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace aeo {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char*
LevelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug:
        return "debug";
      case LogLevel::kInfo:
        return "info";
      case LogLevel::kWarn:
        return "warn";
      case LogLevel::kQuiet:
        return "quiet";
    }
    return "?";
}
}  // namespace

LogLevel
GetLogLevel()
{
    return g_log_level.load(std::memory_order_relaxed);
}

void
SetLogLevel(LogLevel level)
{
    g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

// aeo: hot-path-stop -- diagnostic output: logging formats and writes by
// design, and hot-path callers reach it only on warn/failure slow paths.
void
LogMessage(LogLevel level, const std::string& msg)
{
    if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
        return;
    }
    std::fprintf(stderr, "[aeo:%s] %s\n", LevelTag(level), msg.c_str());
}

void
PanicMessage(const std::string& msg, const char* file, int line)
{
    std::fprintf(stderr, "[aeo:panic] %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

}  // namespace internal
}  // namespace aeo
