/**
 * @file
 * Strong unit types for the physical quantities the library manipulates.
 *
 * Each quantity wraps a double with an explicit constructor so that, e.g.,
 * a power cannot silently be passed where an energy is expected. Arithmetic
 * is defined within a unit (addition, scaling) and across units only where
 * physically meaningful (power × time = energy; instructions / time = rate).
 */
#ifndef AEO_COMMON_UNITS_H_
#define AEO_COMMON_UNITS_H_

#include <compare>
#include <cstdint>

namespace aeo {

namespace internal {

/** CRTP base providing closed arithmetic for a double-valued quantity. */
template <typename Derived>
class Quantity {
  public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double value) : value_(value) {}

    /** Raw numeric value in the unit's canonical scale. */
    constexpr double value() const { return value_; }

    constexpr Derived operator+(Derived rhs) const { return Derived(value_ + rhs.value_); }
    constexpr Derived operator-(Derived rhs) const { return Derived(value_ - rhs.value_); }
    constexpr Derived operator*(double k) const { return Derived(value_ * k); }
    constexpr Derived operator/(double k) const { return Derived(value_ / k); }
    constexpr double operator/(Derived rhs) const { return value_ / rhs.value_; }

    Derived& operator+=(Derived rhs)
    {
        value_ += rhs.value_;
        return static_cast<Derived&>(*this);
    }
    Derived& operator-=(Derived rhs)
    {
        value_ -= rhs.value_;
        return static_cast<Derived&>(*this);
    }

    constexpr auto operator<=>(const Quantity&) const = default;

  private:
    double value_ = 0.0;
};

}  // namespace internal

/** CPU clock frequency in gigahertz. */
class Gigahertz : public internal::Quantity<Gigahertz> {
  public:
    using Quantity::Quantity;
    constexpr double megahertz() const { return value() * 1e3; }
    /** kHz count, staged through megahertz() — the sysfs-boundary scaling
     * the kernel drivers have always used, kept bit-identical. */
    constexpr double kilohertz() const { return megahertz() * 1000.0; }
};

/**
 * Clock frequency in kilohertz — the unit cpufreq sysfs nodes speak
 * (scaling_setspeed, scaling_max_freq). Kept distinct from Gigahertz so a
 * sysfs-scale number can never silently flow into model math.
 */
class Kilohertz : public internal::Quantity<Kilohertz> {
  public:
    using Quantity::Quantity;
    constexpr double megahertz() const { return value() * 1e-3; }
    constexpr Gigahertz gigahertz() const { return Gigahertz(value() * 1e-6); }
};

/** Memory-bus bandwidth in megabytes per second. */
class MegabytesPerSecond : public internal::Quantity<MegabytesPerSecond> {
  public:
    using Quantity::Quantity;
    constexpr double bytes_per_second() const { return value() * 1e6; }
};

/** Electric potential in volts. */
class Volts : public internal::Quantity<Volts> {
  public:
    using Quantity::Quantity;
};

/** Power in milliwatts (the paper reports whole-device power in mW). */
class Milliwatts : public internal::Quantity<Milliwatts> {
  public:
    using Quantity::Quantity;
    constexpr double watts() const { return value() * 1e-3; }
};

/** Energy in joules. */
class Joules : public internal::Quantity<Joules> {
  public:
    using Quantity::Quantity;
    constexpr double millijoules() const { return value() * 1e3; }
};

/** Application performance in giga-instructions per second (§III-B2). */
class Gips : public internal::Quantity<Gips> {
  public:
    using Quantity::Quantity;
    constexpr double instructions_per_second() const { return value() * 1e9; }
};

/** Seconds as a continuous quantity (for model math, not event time). */
class Seconds : public internal::Quantity<Seconds> {
  public:
    using Quantity::Quantity;
    constexpr double milliseconds() const { return value() * 1e3; }
};

/** Milliseconds as a continuous quantity (dwell and overhead budgets). */
class Milliseconds : public internal::Quantity<Milliseconds> {
  public:
    using Quantity::Quantity;
    constexpr Seconds seconds() const { return Seconds(value() * 1e-3); }
};

/**
 * Tagged-constructor spellings enforced by `aeo-lint`'s unit-suffix rule:
 * a numeric literal may only reach a `khz`/`mbps`/`mw`/`ms`-named field
 * wrapped as KHz(x), MBps(x), Milliwatts(x) or Millis(x).
 */
using KHz = Kilohertz;
using MBps = MegabytesPerSecond;
using Millis = Milliseconds;

/** Energy = power × time. */
constexpr Joules
operator*(Milliwatts power, Seconds time)
{
    return Joules(power.watts() * time.value());
}

/** Energy = time × power. */
constexpr Joules
operator*(Seconds time, Milliwatts power)
{
    return power * time;
}

/** Instruction count = rate × time (in units of 1e9 instructions). */
constexpr double
GigaInstructions(Gips rate, Seconds time)
{
    return rate.value() * time.value();
}

/** Average power = energy / time. */
constexpr Milliwatts
AveragePower(Joules energy, Seconds time)
{
    return Milliwatts(energy.value() / time.value() * 1e3);
}

namespace unit_literals {

constexpr Gigahertz operator""_GHz(long double v) { return Gigahertz(static_cast<double>(v)); }
constexpr Gigahertz operator""_GHz(unsigned long long v) { return Gigahertz(static_cast<double>(v)); }
constexpr MegabytesPerSecond operator""_MBps(unsigned long long v)
{
    return MegabytesPerSecond(static_cast<double>(v));
}
constexpr Milliwatts operator""_mW(long double v) { return Milliwatts(static_cast<double>(v)); }
constexpr Milliwatts operator""_mW(unsigned long long v) { return Milliwatts(static_cast<double>(v)); }
constexpr Joules operator""_J(long double v) { return Joules(static_cast<double>(v)); }
constexpr Gips operator""_GIPS(long double v) { return Gips(static_cast<double>(v)); }
constexpr Seconds operator""_s(long double v) { return Seconds(static_cast<double>(v)); }
constexpr Seconds operator""_s(unsigned long long v) { return Seconds(static_cast<double>(v)); }

}  // namespace unit_literals
}  // namespace aeo

#endif  // AEO_COMMON_UNITS_H_
