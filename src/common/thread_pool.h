/**
 * @file
 * A fixed-size worker pool with a futures-based Submit() and a bounded task
 * queue. The pool is the mechanism under the batch-execution layer
 * (core/batch_runner.h): callers submit self-contained closures and collect
 * std::futures, so results are consumed in whatever order the *caller*
 * chooses — which is how BatchRunner guarantees submission-order results
 * regardless of completion order.
 *
 * Design notes:
 *  - The queue is bounded (default 2× the worker count): a producer that
 *    fans out hundreds of thousands of jobs blocks in Submit() instead of
 *    materializing every closure at once.
 *  - Exceptions thrown by a task are captured into its future (the
 *    std::packaged_task contract) and rethrow at future::get(); workers
 *    never die.
 *  - Destruction drains nothing: tasks already dequeued finish, queued
 *    tasks are discarded (their futures report broken_promise). Callers
 *    that need every result — BatchRunner does — get() every future before
 *    the pool goes away.
 */
#ifndef AEO_COMMON_THREAD_POOL_H_
#define AEO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace aeo {

/** Fixed-size worker pool with a bounded task queue. */
class ThreadPool {
  public:
    /**
     * @param num_threads Worker count; must be >= 1.
     * @param max_queue   Queue bound; 0 = 2 * num_threads.
     */
    explicit ThreadPool(size_t num_threads, size_t max_queue = 0);

    /** Joins all workers; queued-but-unstarted tasks are discarded. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Enqueues @p fn, blocking while the queue is full. The returned future
     * yields fn's result or rethrows its exception.
     */
    template <typename F>
    auto
    Submit(F&& fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        // std::function requires copyable callables; packaged_task is
        // move-only, so it rides behind a shared_ptr.
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> future = task->get_future();
        Enqueue([task] { (*task)(); });
        return future;
    }

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

  private:
    void Enqueue(std::function<void()> task);
    void WorkerLoop();

    std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable space_ready_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t max_queue_;
    bool stopping_ = false;
};

}  // namespace aeo

#endif  // AEO_COMMON_THREAD_POOL_H_
