#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

namespace {

std::string
EscapeField(const std::string& field)
{
    if (field.find_first_of(",\"\n") == std::string::npos) {
        return field;
    }
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"') {
            out += "\"\"";
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header))
{
    AEO_ASSERT(!header_.empty(), "CSV header must not be empty");
}

void
CsvWriter::AddRow(std::vector<std::string> row)
{
    AEO_ASSERT(row.size() == header_.size(), "CSV row width %zu != header width %zu",
               row.size(), header_.size());
    rows_.push_back(std::move(row));
}

void
CsvWriter::AddNumericRow(const std::vector<double>& row)
{
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (const double v : row) {
        fields.push_back(StrFormat("%.6g", v));
    }
    AddRow(std::move(fields));
}

std::string
CsvWriter::ToString() const
{
    std::ostringstream out;
    for (size_t i = 0; i < header_.size(); ++i) {
        if (i > 0) {
            out << ',';
        }
        out << EscapeField(header_[i]);
    }
    out << '\n';
    for (const auto& row : rows_) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0) {
                out << ',';
            }
            out << EscapeField(row[i]);
        }
        out << '\n';
    }
    return out.str();
}

void
CsvWriter::WriteFile(const std::string& path) const
{
    std::ofstream file(path);
    if (!file) {
        Fatal("cannot open '%s' for writing", path.c_str());
    }
    file << ToString();
    if (!file) {
        Fatal("error writing '%s'", path.c_str());
    }
}

std::vector<std::vector<std::string>>
ParseCsv(const std::string& text)
{
    std::vector<std::vector<std::string>> rows;
    for (const std::string& line : Split(text, '\n')) {
        if (Trim(line).empty()) {
            continue;
        }
        rows.push_back(Split(line, ','));
    }
    return rows;
}

std::string
ReadFileToString(const std::string& path)
{
    std::ifstream file(path);
    if (!file) {
        Fatal("cannot open '%s' for reading", path.c_str());
    }
    std::ostringstream out;
    out << file.rdbuf();
    return out.str();
}

}  // namespace aeo
