/**
 * @file
 * A fixed-capacity, inline-storage vector: the hot-path replacement for
 * tiny std::vectors whose size has a provable compile-time bound (e.g. a
 * ConfigSchedule's dwell slots — the schedule LP admits an optimum with at
 * most two non-zero dwells, §III-B3). No heap allocation, trivially
 * copyable for trivially-copyable T, asserts on overflow.
 */
#ifndef AEO_COMMON_STATIC_VECTOR_H_
#define AEO_COMMON_STATIC_VECTOR_H_

#include <array>
#include <cstddef>
#include <initializer_list>

#include "common/logging.h"

namespace aeo {

/** A vector with inline storage for at most N elements. */
template <typename T, size_t N>
class StaticVector {
  public:
    StaticVector() = default;

    StaticVector(std::initializer_list<T> init)
    {
        AEO_ASSERT(init.size() <= N, "StaticVector overflow: %zu > %zu",
                   init.size(), N);
        for (const T& value : init) {
            items_[size_++] = value;
        }
    }

    StaticVector&
    operator=(std::initializer_list<T> init)
    {
        *this = StaticVector(init);
        return *this;
    }

    void
    push_back(const T& value)
    {
        AEO_ASSERT(size_ < N, "StaticVector overflow: capacity %zu", N);
        items_[size_++] = value;
    }

    void clear() { size_ = 0; }

    size_t size() const { return size_; }
    static constexpr size_t capacity() { return N; }
    bool empty() const { return size_ == 0; }

    T&
    operator[](size_t i)
    {
        AEO_ASSERT(i < size_, "StaticVector index %zu out of range %zu", i, size_);
        return items_[i];
    }

    const T&
    operator[](size_t i) const
    {
        AEO_ASSERT(i < size_, "StaticVector index %zu out of range %zu", i, size_);
        return items_[i];
    }

    T& front() { return (*this)[0]; }
    const T& front() const { return (*this)[0]; }
    T& back() { return (*this)[size_ - 1]; }
    const T& back() const { return (*this)[size_ - 1]; }

    T* begin() { return items_.data(); }
    T* end() { return items_.data() + size_; }
    const T* begin() const { return items_.data(); }
    const T* end() const { return items_.data() + size_; }

  private:
    std::array<T, N> items_{};
    size_t size_ = 0;
};

}  // namespace aeo

#endif  // AEO_COMMON_STATIC_VECTOR_H_
