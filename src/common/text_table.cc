#include "common/text_table.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace aeo {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header))
{
    AEO_ASSERT(!header_.empty(), "table must have at least one column");
    alignment_.assign(header_.size(), Align::kRight);
    alignment_[0] = Align::kLeft;
}

void
TextTable::SetAlignment(std::vector<Align> alignment)
{
    AEO_ASSERT(alignment.size() == header_.size(),
               "alignment width %zu != header width %zu", alignment.size(),
               header_.size());
    alignment_ = std::move(alignment);
}

void
TextTable::AddRow(std::vector<std::string> row)
{
    AEO_ASSERT(row.size() == header_.size(), "row width %zu != header width %zu",
               row.size(), header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::AddSeparator()
{
    rows_.push_back({});
}

std::string
TextTable::ToString() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    const auto pad = [&](const std::string& text, size_t col) {
        const size_t fill = widths[col] - text.size();
        if (alignment_[col] == Align::kLeft) {
            return text + std::string(fill, ' ');
        }
        return std::string(fill, ' ') + text;
    };

    const auto ruler = [&]() {
        std::string line = "+";
        for (const size_t w : widths) {
            line += std::string(w + 2, '-');
            line += '+';
        }
        return line + "\n";
    };

    std::ostringstream out;
    out << ruler();
    out << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
        out << ' ' << pad(header_[c], c) << " |";
    }
    out << "\n" << ruler();
    for (const auto& row : rows_) {
        if (row.empty()) {
            out << ruler();
            continue;
        }
        out << "|";
        for (size_t c = 0; c < row.size(); ++c) {
            out << ' ' << pad(row[c], c) << " |";
        }
        out << "\n";
    }
    out << ruler();
    return out.str();
}

}  // namespace aeo
