/**
 * @file
 * A minimal JSON value type with a strict parser and a deterministic
 * serializer.
 *
 * The chaos-campaign engine needs machine-readable artifacts — scenario
 * specs, crash bundles, BENCH_* snapshots — that round-trip exactly: a
 * bundle written by one run must replay bit-identically in another, and CI
 * diffs the serialized bytes. So the serializer is deterministic (object
 * keys keep insertion order, numbers print through one %.17g-then-trim
 * path) and the parser accepts exactly the JSON grammar (no comments, no
 * trailing commas), failing loudly with a line/column message instead of
 * guessing.
 *
 * This is deliberately not a general-purpose JSON library: no SAX
 * interface, no UTF-16 surrogate handling beyond pass-through, no
 * arbitrary-precision numbers. Every number is a double, which is exact
 * for the integers the repo serializes (< 2^53).
 */
#ifndef AEO_COMMON_JSON_H_
#define AEO_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace aeo {

/** One JSON value: null, bool, number, string, array or object. */
class JsonValue {
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    /** An object member; members keep insertion order. */
    using Member = std::pair<std::string, JsonValue>;

    JsonValue() : type_(Type::kNull) {}
    JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
    JsonValue(double value) : type_(Type::kNumber), number_(value) {}
    JsonValue(int value) : type_(Type::kNumber), number_(value) {}
    JsonValue(int64_t value)
        : type_(Type::kNumber), number_(static_cast<double>(value))
    {
    }
    JsonValue(uint64_t value)
        : type_(Type::kNumber), number_(static_cast<double>(value))
    {
    }
    JsonValue(const char* value) : type_(Type::kString), string_(value) {}
    JsonValue(std::string value)
        : type_(Type::kString), string_(std::move(value))
    {
    }

    /** An empty array/object of the given type. */
    static JsonValue MakeArray();
    static JsonValue MakeObject();

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    /** Typed accessors; Fatal() on a type mismatch. */
    bool AsBool() const;
    double AsDouble() const;
    int64_t AsInt64() const;
    uint64_t AsUint64() const;
    const std::string& AsString() const;

    /** Array access; Fatal() unless is_array(). */
    const std::vector<JsonValue>& items() const;
    void Append(JsonValue value);

    /** Object access; Fatal() unless is_object(). */
    const std::vector<Member>& members() const;
    /** Sets (or replaces) a member, preserving first-set order. */
    void Set(const std::string& key, JsonValue value);
    /** True if the object has @p key. */
    bool Has(const std::string& key) const;
    /** Member lookup; Fatal() when the key is absent. */
    const JsonValue& At(const std::string& key) const;
    /** Member lookup with a default for absent keys. */
    double GetDouble(const std::string& key, double fallback) const;
    bool GetBool(const std::string& key, bool fallback) const;
    std::string GetString(const std::string& key,
                          const std::string& fallback) const;

    /**
     * Serializes deterministically. @p indent > 0 pretty-prints with that
     * many spaces per level; 0 emits the compact single-line form.
     */
    std::string Dump(int indent = 0) const;

  private:
    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/** Outcome of parsing a JSON document. */
struct JsonParseResult {
    bool ok = false;
    JsonValue value;
    /** "line L, column C: why" when !ok. */
    std::string error;
};

/** Parses one JSON document (surrounding whitespace allowed). */
JsonParseResult ParseJson(const std::string& text);

}  // namespace aeo

#endif  // AEO_COMMON_JSON_H_
