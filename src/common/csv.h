/**
 * @file
 * Minimal CSV writing/reading used for persisting profile tables and
 * experiment traces.
 */
#ifndef AEO_COMMON_CSV_H_
#define AEO_COMMON_CSV_H_

#include <string>
#include <vector>

namespace aeo {

/** Accumulates rows and serializes them as RFC-4180-ish CSV. */
class CsvWriter {
  public:
    /** Sets the header row. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Appends a row; must match the header width. */
    void AddRow(std::vector<std::string> row);

    /** Convenience: appends a row of doubles formatted with %.6g. */
    void AddNumericRow(const std::vector<double>& row);

    /** Serializes header + rows. */
    std::string ToString() const;

    /** Writes the serialized CSV to @p path; Fatal() on I/O error. */
    void WriteFile(const std::string& path) const;

    /** Number of data rows. */
    size_t row_count() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Parses CSV text into rows of fields (no quoting support needed here). */
std::vector<std::vector<std::string>> ParseCsv(const std::string& text);

/** Reads a whole file; Fatal() on I/O error. */
std::string ReadFileToString(const std::string& path);

}  // namespace aeo

#endif  // AEO_COMMON_CSV_H_
