#include "stats/histogram.h"

#include <algorithm>
#include <cstddef>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

Histogram::Histogram(size_t bins) : weights_(bins, 0.0)
{
    AEO_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::Add(size_t bin, double weight)
{
    AEO_ASSERT(bin < weights_.size(), "bin %zu out of %zu", bin, weights_.size());
    AEO_ASSERT(weight >= 0.0, "negative histogram weight %f", weight);
    weights_[bin] += weight;
}

double
Histogram::WeightAt(size_t bin) const
{
    AEO_ASSERT(bin < weights_.size(), "bin %zu out of %zu", bin, weights_.size());
    return weights_[bin];
}

double
Histogram::TotalWeight() const
{
    double total = 0.0;
    for (const double w : weights_) {
        total += w;
    }
    return total;
}

double
Histogram::FractionAt(size_t bin) const
{
    const double total = TotalWeight();
    if (total <= 0.0) {
        return 0.0;
    }
    return WeightAt(bin) / total;
}

size_t
Histogram::ModeBin() const
{
    return static_cast<size_t>(
        std::max_element(weights_.begin(), weights_.end()) - weights_.begin());
}

std::vector<double>
Histogram::Fractions() const
{
    std::vector<double> out(weights_.size());
    for (size_t i = 0; i < weights_.size(); ++i) {
        out[i] = FractionAt(i);
    }
    return out;
}

std::string
Histogram::ToBarChart(const std::vector<std::string>& labels, size_t width) const
{
    AEO_ASSERT(labels.size() == weights_.size(), "label count %zu != bin count %zu",
               labels.size(), weights_.size());
    size_t label_width = 0;
    for (const auto& label : labels) {
        label_width = std::max(label_width, label.size());
    }
    const double max_fraction =
        weights_.empty() ? 0.0 : FractionAt(ModeBin());

    std::ostringstream out;
    for (size_t i = 0; i < weights_.size(); ++i) {
        const double frac = FractionAt(i);
        const size_t bar =
            max_fraction > 0.0
                ? static_cast<size_t>(frac / max_fraction *
                                      static_cast<double>(width) + 0.5)
                : 0;
        out << StrFormat("  %-*s %6.2f%% |%s\n", static_cast<int>(label_width),
                         labels[i].c_str(), frac * 100.0,
                         std::string(bar, '#').c_str());
    }
    return out.str();
}

}  // namespace aeo
