#include "stats/comparison.h"

#include <sstream>

#include "common/strings.h"
#include "common/text_table.h"

namespace aeo {

ComparisonReport::ComparisonReport(std::string title) : title_(std::move(title)) {}

// aeo: hot-path-stop -- offline comparison reporting: rows accumulate for
// the end-of-run report and never sit on the per-cycle control path.
void
ComparisonReport::Add(const std::string& label, double paper_value,
                      double measured_value, const std::string& unit)
{
    rows_.push_back(ComparisonRow{label, paper_value, measured_value, unit});
}

std::string
ComparisonReport::ToString() const
{
    TextTable table({"quantity", "paper", "measured", "unit"});
    for (const auto& row : rows_) {
        table.AddRow({row.label, StrFormat("%.2f", row.paper_value),
                      StrFormat("%.2f", row.measured_value), row.unit});
    }
    std::ostringstream out;
    out << "== " << title_ << " ==\n" << table.ToString();
    return out.str();
}

}  // namespace aeo
