/**
 * @file
 * Paper-vs-measured comparison records — every benchmark harness emits these
 * so EXPERIMENTS.md can track how closely the reproduction matches the
 * published shape.
 */
#ifndef AEO_STATS_COMPARISON_H_
#define AEO_STATS_COMPARISON_H_

#include <optional>
#include <string>
#include <vector>

namespace aeo {

/** One compared quantity: what the paper reported vs what we measured. */
struct ComparisonRow {
    std::string label;
    double paper_value = 0.0;
    double measured_value = 0.0;
    std::string unit;
};

/** Collects comparison rows and renders them as a table. */
class ComparisonReport {
  public:
    /** @param title Heading printed above the table. */
    explicit ComparisonReport(std::string title);

    /** Adds one compared quantity. */
    void Add(const std::string& label, double paper_value, double measured_value,
             const std::string& unit);

    /** Renders the full report. */
    std::string ToString() const;

    /** Access to the raw rows (for tests). */
    const std::vector<ComparisonRow>& rows() const { return rows_; }

  private:
    std::string title_;
    std::vector<ComparisonRow> rows_;
};

}  // namespace aeo

#endif  // AEO_STATS_COMPARISON_H_
