/**
 * @file
 * Discrete residency histogram used to reproduce the paper's Figures 1, 4
 * and 5 (percentage of time spent at each CPU-frequency / bandwidth level).
 */
#ifndef AEO_STATS_HISTOGRAM_H_
#define AEO_STATS_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace aeo {

/** Weighted histogram over a fixed set of integer-indexed bins. */
class Histogram {
  public:
    /** Creates a histogram with @p bins empty bins. */
    explicit Histogram(size_t bins);

    /** Adds @p weight to @p bin. */
    void Add(size_t bin, double weight);

    /** Number of bins. */
    size_t size() const { return weights_.size(); }

    /** Raw accumulated weight in @p bin. */
    double WeightAt(size_t bin) const;

    /** Sum of all bin weights. */
    double TotalWeight() const;

    /** Bin weight as a fraction of the total (0 when the total is 0). */
    double FractionAt(size_t bin) const;

    /** Bin weight as a percentage of the total. */
    double PercentAt(size_t bin) const { return FractionAt(bin) * 100.0; }

    /** Index of the heaviest bin (lowest index wins ties). */
    size_t ModeBin() const;

    /** All fractions as a vector (sums to 1 when total > 0). */
    std::vector<double> Fractions() const;

    /**
     * Renders a horizontal ASCII bar chart: one row per bin with its label,
     * percentage, and a bar scaled so the heaviest bin spans @p width chars.
     */
    std::string ToBarChart(const std::vector<std::string>& labels,
                           size_t width = 40) const;

  private:
    std::vector<double> weights_;
};

}  // namespace aeo

#endif  // AEO_STATS_HISTOGRAM_H_
