/**
 * @file
 * R1 — Robustness: the hardened controller under injected kernel-interface
 * and instrumentation faults (no paper counterpart; see DESIGN.md §"Failure
 * model & degraded mode").
 *
 * Sweeps a transient fault rate applied simultaneously to sysfs actuation
 * (EBUSY + latency spikes), PMU reads (drops + stale values) and the power
 * meter (missed windows), and reports the controller's performance
 * violation, energy relative to the fault-free run, and the hardening
 * machinery's counters. A final 100 % sticky-failure case demonstrates the
 * watchdog reverting to the stock governors within K = 3 control cycles.
 *
 * Emits robustness_fault_sweep.csv alongside the text table.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/batch_runner.h"
#include "core/offline_profiler.h"
#include "core/online_controller.h"
#include "core/scenarios.h"
#include "device/device.h"
#include "platform/sim_platform.h"

namespace aeo {
namespace {

constexpr const char kApp[] = "AngryBirds";
constexpr uint64_t kDefaultSeed = 2017;

std::vector<FaultRule>
TransientFaults(double rate)
{
    std::vector<FaultRule> rules;

    FaultRule actuation;  // EBUSY + latency spikes + lying writes (cpufreq)
    actuation.path_prefix = kCpufreqSysfsRoot;
    actuation.fail_probability = rate;
    actuation.errc = FaultErrc::kBusy;
    actuation.latency_spike_probability = rate;
    actuation.silent_clamp_probability = rate;
    rules.push_back(actuation);
    actuation.path_prefix = kDevfreqSysfsRoot;
    rules.push_back(actuation);

    FaultRule pmu;  // dropped and stale performance-counter reads
    pmu.path_prefix = kPmuFaultPath;
    pmu.fail_probability = rate;
    pmu.errc = FaultErrc::kIo;
    pmu.stale_probability = rate;
    rules.push_back(pmu);

    FaultRule meter;  // missed power-meter sample windows
    meter.path_prefix = kMonsoonFaultPath;
    meter.fail_probability = rate;
    meter.errc = FaultErrc::kIo;
    rules.push_back(meter);

    return rules;
}

struct SweepRow {
    double rate = 0.0;
    double energy_j = 0.0;
    double avg_gips = 0.0;
    double violation_pct = 0.0;   // shortfall of delivered vs target perf
    double degraded_frac = 0.0;   // cycles run in degraded mode
    uint64_t retries = 0;
    uint64_t failed_ops = 0;
    uint64_t silent_clamps = 0;
    uint64_t readback_failures = 0;
    uint64_t dropped_pmu = 0;
    uint64_t stale_pmu = 0;
    uint64_t dropped_meter = 0;
    uint64_t fault_events = 0;
    bool fallback = false;
};

SweepRow
RunAtRate(const ProfileTable& table, double target_gips, double rate,
          uint64_t seed)
{
    const AppScenario scenario = GetAppScenario(kApp);
    DeviceConfig device_config;
    device_config.seed = seed + 2000;
    device_config.fault_rules = TransientFaults(rate);
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName(kApp));

    ControllerConfig config;
    config.target_gips = target_gips;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(scenario.run_duration);
    controller.Stop();

    const RunResult result = device.CollectResult("controller+faults");
    SweepRow row;
    row.rate = rate;
    row.energy_j = result.energy_j;
    row.avg_gips = result.avg_gips;
    row.violation_pct =
        std::max(0.0, target_gips - result.avg_gips) / target_gips * 100.0;
    row.degraded_frac =
        controller.cycle_count() > 0
            ? static_cast<double>(controller.degraded_cycle_count()) /
                  static_cast<double>(controller.cycle_count())
            : 0.0;
    row.retries = controller.actuator().stats().retries;
    row.failed_ops = controller.actuator().stats().failed_ops;
    row.silent_clamps = controller.actuator().stats().silent_clamps;
    row.readback_failures = controller.actuator().stats().readback_failures;
    row.dropped_pmu = device.perf().dropped_sample_count();
    row.stale_pmu = device.perf().stale_sample_count();
    row.dropped_meter = device.monitor().dropped_sample_count();
    row.fault_events = device.fault_injector() != nullptr
                           ? device.fault_injector()->trace().size()
                           : 0;
    row.fallback = controller.fallback_engaged();
    return row;
}

void
StickyFailureDemo(const ProfileTable& table, double target_gips,
                  uint64_t seed)
{
    FaultRule sticky;
    sticky.path_prefix = std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
    sticky.fail_probability = 1.0;
    sticky.errc = FaultErrc::kIo;
    sticky.duration = FaultDuration::kSticky;

    DeviceConfig device_config;
    device_config.seed = seed + 3000;
    device_config.fault_rules = {sticky};
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName(kApp));

    ControllerConfig config;
    config.target_gips = target_gips;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(GetAppScenario(kApp).run_duration);
    controller.Stop();

    std::printf(
        "100%% sticky actuation failure: watchdog %s after %zu control "
        "cycle(s)\n  (K = %d; Start's initial apply is the first strike), "
        "governors now %s/%s.\n",
        controller.fallback_engaged() ? "reverted to stock governors"
                                      : "DID NOT ENGAGE",
        controller.cycle_count(), config.watchdog_threshold,
        device.cpufreq().governor_name().c_str(),
        device.devfreq().governor_name().c_str());
}

/**
 * The snapshot holds the structural outcome of the sweep — the counters are
 * exact integer results of the seeded simulation, the continuous values are
 * %.6g-rounded. CI regenerates it at --jobs=1 and --jobs=4 and diffs
 * byte-for-byte against the committed copy.
 */
JsonValue
SnapshotJson(const bench::BenchArgs& args, uint64_t seed, bool fast,
             const std::vector<SweepRow>& rows)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("schema", 1);
    doc.Set("bench", "robustness_fault_sweep");
    doc.Set("app", kApp);
    doc.Set("root_seed", StrFormat("%llu",
                                   static_cast<unsigned long long>(seed)));
    doc.Set("fast", fast);
    doc.Set("profile_runs", args.ProfileRuns());
    JsonValue sweep = JsonValue::MakeArray();
    for (const SweepRow& row : rows) {
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("fault_rate", StrFormat("%.2f", row.rate));
        entry.Set("energy_j", StrFormat("%.6g", row.energy_j));
        entry.Set("avg_gips", StrFormat("%.6g", row.avg_gips));
        entry.Set("violation_pct", StrFormat("%.6g", row.violation_pct));
        entry.Set("degraded_frac", StrFormat("%.6g", row.degraded_frac));
        entry.Set("retries", row.retries);
        entry.Set("failed_ops", row.failed_ops);
        entry.Set("silent_clamps", row.silent_clamps);
        entry.Set("readback_failures", row.readback_failures);
        entry.Set("dropped_pmu", row.dropped_pmu);
        entry.Set("stale_pmu", row.stale_pmu);
        entry.Set("dropped_meter", row.dropped_meter);
        entry.Set("fault_events", row.fault_events);
        entry.Set("fallback", row.fallback);
        sweep.Append(std::move(entry));
    }
    doc.Set("sweep", std::move(sweep));
    return doc;
}

}  // namespace
}  // namespace aeo

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kQuiet);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    const bool fast = args.fast;
    const uint64_t seed = args.SeedOr(kDefaultSeed);
    std::string json_path = "BENCH_fault_sweep.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        }
    }
    bench::PrintHeader("R1 / robustness",
                       "Fault-rate sweep: hardened controller vs injected "
                       "sysfs/PMU/meter failures");

    // Clean profile and target, exactly as the §V procedure would obtain
    // them (faults perturb the controlled run, not the offline data).
    const AppScenario scenario = GetAppScenario(kApp);
    ProfilerOptions profiler_options;
    profiler_options.runs = args.ProfileRuns();
    profiler_options.cpu_levels = scenario.profile_cpu_levels;
    profiler_options.measure_duration = scenario.profile_duration;
    profiler_options.seed = seed + 1000;
    profiler_options.batch = args.batch;
    const ProfileTable table =
        OfflineProfiler().Profile(MakeAppSpecByName(kApp), profiler_options);

    DeviceConfig default_config;
    default_config.seed = seed;
    Device default_device(default_config);
    default_device.UseDefaultGovernors();
    default_device.LaunchApp(MakeAppSpecByName(kApp));
    default_device.RunFor(scenario.run_duration);
    const double target = default_device.CollectResult("default").avg_gips;

    const std::vector<double> rates =
        fast ? std::vector<double>{0.0, 0.05, 0.25}
             : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50};

    // "Failed/Lied": writes the kernel *rejected* vs writes it *accepted but
    // did not apply* (silent clamps caught by read-back) — distinct failure
    // modes with distinct controller responses (retry/watchdog vs masking).
    TextTable text({"Fault rate", "Energy (J)", "vs fault-free", "Violation",
                    "Degraded", "Retries", "Failed/Lied", "PMU drop/stale",
                    "Meter drop", "Fallback"});
    CsvWriter csv({"fault_rate", "energy_j", "energy_vs_fault_free_pct",
                   "avg_gips", "violation_pct", "degraded_cycle_frac",
                   "retries", "failed_ops", "silent_clamps",
                   "readback_failures", "dropped_pmu", "stale_pmu",
                   "dropped_meter", "fault_events", "fallback_engaged"});

    // Each rate's controlled run is seeded and self-contained: fan them out,
    // then do the vs-fault-free math in rate order (0.0 is first).
    std::vector<std::function<SweepRow()>> sweep_tasks;
    for (const double rate : rates) {
        sweep_tasks.push_back(
            [&table, target, rate, seed] {
                return RunAtRate(table, target, rate, seed);
            });
    }
    const std::vector<SweepRow> sweep_rows =
        BatchRunner(args.batch).RunOrdered(std::move(sweep_tasks));

    double fault_free_energy = 0.0;
    double fault_free_violation = 0.0;
    double violation_at_5pct = -1.0;
    for (const SweepRow& row : sweep_rows) {
        const double rate = row.rate;
        if (rate == 0.0) {
            fault_free_energy = row.energy_j;
            fault_free_violation = row.violation_pct;
        }
        if (rate == 0.05) {
            violation_at_5pct = row.violation_pct;
        }
        const double energy_delta_pct =
            fault_free_energy > 0.0
                ? (row.energy_j / fault_free_energy - 1.0) * 100.0
                : 0.0;
        text.AddRow({StrFormat("%.0f%%", rate * 100.0),
                     StrFormat("%.1f", row.energy_j),
                     StrFormat("%+.2f%%", energy_delta_pct),
                     StrFormat("%.2f%%", row.violation_pct),
                     StrFormat("%.0f%%", row.degraded_frac * 100.0),
                     StrFormat("%llu", static_cast<unsigned long long>(row.retries)),
                     StrFormat("%llu/%llu",
                               static_cast<unsigned long long>(row.failed_ops),
                               static_cast<unsigned long long>(row.silent_clamps)),
                     StrFormat("%llu/%llu",
                               static_cast<unsigned long long>(row.dropped_pmu),
                               static_cast<unsigned long long>(row.stale_pmu)),
                     StrFormat("%llu", static_cast<unsigned long long>(row.dropped_meter)),
                     row.fallback ? "YES" : "no"});
        csv.AddRow({StrFormat("%.2f", rate), StrFormat("%.6g", row.energy_j),
                    StrFormat("%.6g", energy_delta_pct),
                    StrFormat("%.6g", row.avg_gips),
                    StrFormat("%.6g", row.violation_pct),
                    StrFormat("%.6g", row.degraded_frac),
                    StrFormat("%llu", static_cast<unsigned long long>(row.retries)),
                    StrFormat("%llu", static_cast<unsigned long long>(row.failed_ops)),
                    StrFormat("%llu", static_cast<unsigned long long>(row.silent_clamps)),
                    StrFormat("%llu", static_cast<unsigned long long>(row.readback_failures)),
                    StrFormat("%llu", static_cast<unsigned long long>(row.dropped_pmu)),
                    StrFormat("%llu", static_cast<unsigned long long>(row.stale_pmu)),
                    StrFormat("%llu", static_cast<unsigned long long>(row.dropped_meter)),
                    StrFormat("%llu", static_cast<unsigned long long>(row.fault_events)),
                    row.fallback ? "1" : "0"});
        std::fflush(stdout);
    }
    std::printf("%s\n", text.ToString().c_str());

    const std::string csv_path =
        args.OutputPath("robustness_fault_sweep.csv");
    csv.WriteFile(csv_path);
    std::printf("Wrote %s\n", csv_path.c_str());

    std::ofstream snapshot(json_path);
    snapshot << SnapshotJson(args, seed, fast, sweep_rows).Dump(2) << "\n";
    snapshot.close();
    std::printf("Wrote %s\n\n", json_path.c_str());

    if (violation_at_5pct >= 0.0) {
        // The acceptance bar: violation at a 5 % fault rate within 2× the
        // fault-free violation (with a 1 % absolute floor, since the
        // fault-free controller regulates to well under a percent), plus
        // the physically-unavoidable loss from lying writes: a dwell whose
        // write was silently clamped really ran at clamp_factor × the
        // requested frequency, and a rate regulator cannot retroactively
        // mint the instructions that dwell never executed. Worst case that
        // loss is rate × (1 − factor) of delivered performance.
        const FaultRule reference = TransientFaults(0.05).front();
        const double physical_loss_pct = 0.05 *
            (1.0 - reference.silent_clamp_factor) * 100.0;
        const double bound =
            std::max(2.0 * fault_free_violation, 1.0) + physical_loss_pct;
        std::printf("Acceptance: violation at 5%% faults = %.2f%% "
                    "(fault-free %.2f%%, clamp-loss allowance %.2f%%, "
                    "bound %.2f%%) — %s\n\n",
                    violation_at_5pct, fault_free_violation,
                    physical_loss_pct, bound,
                    violation_at_5pct <= bound ? "PASS" : "FAIL");
    }

    StickyFailureDemo(table, target, seed);
    return 0;
}
