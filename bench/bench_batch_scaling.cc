/**
 * @file
 * P1 — Batch-layer scaling: wall-clock time of a dense offline profile
 * (the full 18×13 = 234-configuration grid, one run each) executed serially
 * and through the batch layer at increasing worker counts.
 *
 * The profile is the repo's heaviest embarrassingly-parallel workload —
 * every (configuration, run) job builds its own seeded Device — so it is
 * the honest yardstick for the layer: near-linear speedup up to the
 * machine's core count, and bit-identical tables at every worker count
 * (asserted here via ToCsv() comparison, not just claimed).
 *
 * Emits BENCH_batch_scaling.json with wall seconds and speedup per jobs
 * value, plus the measured *serial fraction* of the fan-out: the
 * coordination cost per job of the legacy per-task-future path
 * (RunOrdered) versus the indexed worker-loop path (RunIndexed) that the
 * profiling grid now uses, and the Amdahl-projected speedup each implies.
 * Measured speedups are bounded by hardware_threads — on a single-core
 * machine they sit at ~1.0 regardless of the layer — so the JSON records
 * the hardware alongside the projection rather than pretending otherwise.
 * --fast shrinks the grid and probes jobs={2} only (CI smoke);
 * --jobs=N is ignored — this bench sweeps the worker count itself.
 */
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/batch_runner.h"
#include "core/offline_profiler.h"
#include "sim/event_queue.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("P1 / batch scaling",
                       "Dense-profile wall clock: serial vs batch workers");

    ProfilerOptions options;
    options.sparse = false;  // the full 18×13 grid
    options.runs = 1;
    options.measure_duration =
        args.fast ? SimTime::FromSeconds(2) : SimTime::FromSeconds(5);
    options.seed = 2017;
    if (args.fast) {
        options.cpu_levels = {0, 8, 17};  // 3×13 = 39 configurations
    }

    const AppSpec app = MakeAppSpecByName("AngryBirds");
    const OfflineProfiler profiler;

    const std::vector<int> sweep =
        args.fast ? std::vector<int>{2} : std::vector<int>{2, 4, 8};

    struct Point {
        int jobs;
        double seconds;
        double speedup;
        bool identical;
    };
    std::vector<Point> points;

    options.batch.jobs = 1;
    const uint64_t events_before = TotalExecutedEvents();
    const double serial_start = bench::MonotonicSeconds();
    const ProfileTable serial_table = profiler.Profile(app, options);
    const double serial_seconds =
        bench::MonotonicSeconds() - serial_start;
    const uint64_t serial_events = TotalExecutedEvents() - events_before;
    const std::string serial_csv = serial_table.ToCsv();
    points.push_back(Point{1, serial_seconds, 1.0, true});

    for (const int jobs : sweep) {
        options.batch.jobs = jobs;
        const double start = bench::MonotonicSeconds();
        const ProfileTable table = profiler.Profile(app, options);
        const double seconds =
            bench::MonotonicSeconds() - start;
        const bool identical = table.ToCsv() == serial_csv;
        if (!identical) {
            std::fprintf(stderr,
                         "FAIL: jobs=%d produced a different table than "
                         "serial — determinism contract broken\n",
                         jobs);
        }
        points.push_back(
            Point{jobs, seconds, seconds > 0.0 ? serial_seconds / seconds : 0.0,
                  identical});
    }

    // ---- Serial-fraction measurement -----------------------------------
    // Time the dispatch machinery itself — trivial jobs, so everything
    // measured is coordination, the part of the fan-out Amdahl's law
    // charges as serial. The legacy path materializes a closure, a
    // packaged_task, a future, and a bounded-queue handoff per job; the
    // indexed path costs one atomic fetch_add per job.
    const unsigned hardware_threads =
        std::max(1u, std::thread::hardware_concurrency());
    const size_t coord_tasks = 20000;
    const BatchRunner coord_runner(BatchOptions{2});
    double ordered_us_per_task = 0.0;
    double indexed_us_per_task = 0.0;
    {
        std::vector<std::function<int()>> trivial;
        trivial.reserve(coord_tasks);
        for (size_t i = 0; i < coord_tasks; ++i) {
            trivial.push_back([i] { return static_cast<int>(i); });
        }
        const double start = bench::MonotonicSeconds();
        coord_runner.RunOrdered(std::move(trivial));
        ordered_us_per_task =
            (bench::MonotonicSeconds() - start) * 1e6 /
            static_cast<double>(coord_tasks);
    }
    {
        const double start = bench::MonotonicSeconds();
        coord_runner.RunIndexed<int>(
            coord_tasks, [](size_t i) { return static_cast<int>(i); });
        indexed_us_per_task =
            (bench::MonotonicSeconds() - start) * 1e6 /
            static_cast<double>(coord_tasks);
    }
    // The grid's serial fraction under each dispatch path: coordination
    // time over total serial wall time. Projected speedup at N workers is
    // Amdahl's 1 / (s + (1 - s) / N).
    const double grid_jobs = static_cast<double>(serial_table.size());
    const auto serial_fraction = [&](double us_per_task) {
        if (serial_seconds <= 0.0) {
            return 0.0;
        }
        const double coordination_s = us_per_task * grid_jobs * 1e-6;
        return std::min(1.0, coordination_s / serial_seconds);
    };
    const double s_ordered = serial_fraction(ordered_us_per_task);
    const double s_indexed = serial_fraction(indexed_us_per_task);
    const auto amdahl = [](double s, int n) {
        return 1.0 / (s + (1.0 - s) / static_cast<double>(n));
    };

    TextTable text({"Jobs", "Wall (s)", "Speedup", "Projected", "Bit-identical"});
    for (const Point& p : points) {
        text.AddRow({StrFormat("%d", p.jobs), StrFormat("%.2f", p.seconds),
                     StrFormat("%.2fx", p.speedup),
                     StrFormat("%.2fx", amdahl(s_indexed, p.jobs)),
                     p.identical ? "yes" : "NO"});
    }
    std::printf("%s\n", text.ToString().c_str());
    std::printf("hardware threads: %u   coordination/job: ordered %.2f us, "
                "indexed %.2f us   serial fraction: ordered %.4f, indexed %.4f\n\n",
                hardware_threads, ordered_us_per_task, indexed_us_per_task,
                s_ordered, s_indexed);

    std::string json = "{\n  \"bench\": \"batch_scaling\",\n  \"grid_configs\": " +
                       StrFormat("%zu", serial_table.size()) +
                       ",\n  \"hardware_threads\": " +
                       StrFormat("%u", hardware_threads) +
                       ",\n  \"serial_wall_seconds\": " +
                       StrFormat("%.4f", serial_seconds) +
                       ",\n  \"serial_events_per_second\": " +
                       StrFormat("%.0f", serial_seconds > 0.0
                                             ? static_cast<double>(serial_events) /
                                                   serial_seconds
                                             : 0.0) +
                       ",\n  \"coordination\": {\"probe_jobs\": 2, \"tasks\": " +
                       StrFormat("%zu", coord_tasks) +
                       ", \"ordered_us_per_task\": " +
                       StrFormat("%.3f", ordered_us_per_task) +
                       ", \"indexed_us_per_task\": " +
                       StrFormat("%.3f", indexed_us_per_task) +
                       "},\n  \"serial_fraction\": {\"ordered\": " +
                       StrFormat("%.6f", s_ordered) + ", \"indexed\": " +
                       StrFormat("%.6f", s_indexed) +
                       "},\n  \"note\": \"measured speedup is bounded by "
                       "hardware_threads; amdahl_projected_speedup applies the "
                       "measured indexed serial fraction\",\n  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        json += StrFormat("    {\"jobs\": %d, \"wall_seconds\": %.4f, "
                          "\"speedup\": %.3f, \"amdahl_projected_speedup\": %.3f, "
                          "\"bit_identical\": %s}%s\n",
                          points[i].jobs, points[i].seconds, points[i].speedup,
                          amdahl(s_indexed, points[i].jobs),
                          points[i].identical ? "true" : "false",
                          i + 1 < points.size() ? "," : "");
    }
    json += "  ]\n}\n";
    const std::string json_path = "BENCH_batch_scaling.json";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    AEO_ASSERT(f != nullptr, "cannot open %s", json_path.c_str());
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("Wrote %s\n", json_path.c_str());

    bool all_identical = true;
    for (const Point& p : points) {
        all_identical = all_identical && p.identical;
    }
    return all_identical ? 0 : 1;
}
