/**
 * @file
 * P1 — Batch-layer scaling: wall-clock time of a dense offline profile
 * (the full 18×13 = 234-configuration grid, one run each) executed serially
 * and through the batch layer at increasing worker counts.
 *
 * The profile is the repo's heaviest embarrassingly-parallel workload —
 * every (configuration, run) job builds its own seeded Device — so it is
 * the honest yardstick for the layer: near-linear speedup up to the
 * machine's core count, and bit-identical tables at every worker count
 * (asserted here via ToCsv() comparison, not just claimed).
 *
 * Emits BENCH_batch_scaling.json with wall seconds and speedup per jobs
 * value. --fast shrinks the grid and probes jobs={2} only (CI smoke);
 * --jobs=N is ignored — this bench sweeps the worker count itself.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/offline_profiler.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    using Clock = std::chrono::steady_clock;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("P1 / batch scaling",
                       "Dense-profile wall clock: serial vs batch workers");

    ProfilerOptions options;
    options.sparse = false;  // the full 18×13 grid
    options.runs = 1;
    options.measure_duration =
        args.fast ? SimTime::FromSeconds(2) : SimTime::FromSeconds(5);
    options.seed = 2017;
    if (args.fast) {
        options.cpu_levels = {0, 8, 17};  // 3×13 = 39 configurations
    }

    const AppSpec app = MakeAppSpecByName("AngryBirds");
    const OfflineProfiler profiler;

    const std::vector<int> sweep =
        args.fast ? std::vector<int>{2} : std::vector<int>{2, 4, 8};

    struct Point {
        int jobs;
        double seconds;
        double speedup;
        bool identical;
    };
    std::vector<Point> points;

    options.batch.jobs = 1;
    const auto serial_start = Clock::now();
    const ProfileTable serial_table = profiler.Profile(app, options);
    const double serial_seconds =
        std::chrono::duration<double>(Clock::now() - serial_start).count();
    const std::string serial_csv = serial_table.ToCsv();
    points.push_back(Point{1, serial_seconds, 1.0, true});

    for (const int jobs : sweep) {
        options.batch.jobs = jobs;
        const auto start = Clock::now();
        const ProfileTable table = profiler.Profile(app, options);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        const bool identical = table.ToCsv() == serial_csv;
        if (!identical) {
            std::fprintf(stderr,
                         "FAIL: jobs=%d produced a different table than "
                         "serial — determinism contract broken\n",
                         jobs);
        }
        points.push_back(
            Point{jobs, seconds, seconds > 0.0 ? serial_seconds / seconds : 0.0,
                  identical});
    }

    TextTable text({"Jobs", "Wall (s)", "Speedup", "Bit-identical"});
    for (const Point& p : points) {
        text.AddRow({StrFormat("%d", p.jobs), StrFormat("%.2f", p.seconds),
                     StrFormat("%.2fx", p.speedup), p.identical ? "yes" : "NO"});
    }
    std::printf("%s\n", text.ToString().c_str());

    std::string json = "{\n  \"bench\": \"batch_scaling\",\n  \"grid_configs\": " +
                       StrFormat("%zu", serial_table.size()) + ",\n  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        json += StrFormat("    {\"jobs\": %d, \"wall_seconds\": %.4f, "
                          "\"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                          points[i].jobs, points[i].seconds, points[i].speedup,
                          points[i].identical ? "true" : "false",
                          i + 1 < points.size() ? "," : "");
    }
    json += "  ]\n}\n";
    const std::string json_path = "BENCH_batch_scaling.json";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    AEO_ASSERT(f != nullptr, "cannot open %s", json_path.c_str());
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("Wrote %s\n", json_path.c_str());

    bool all_identical = true;
    for (const Point& p : points) {
        all_identical = all_identical && p.identical;
    }
    return all_identical ? 0 : 1;
}
