/**
 * @file
 * E7 — Table IV: controller performance and energy savings when the runtime
 * background load differs from the profiling load (§V-C). Profiling always
 * happens under the baseline load (BL); the controller is then evaluated
 * under BL, no-load (NL) and heavier-load (HL) conditions against the
 * default governors in the same condition.
 *
 * Emits BENCH_table4.json (override with --json=PATH): a deterministic,
 * jobs-invariant snapshot of the app x load grid, %.6g-rounded, diffed
 * byte-for-byte in CI against bench/snapshots/BENCH_table4.json. Wall time
 * and simulated-event throughput go to the <snapshot>.perf.json sidecar.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"
#include "paper_data.h"
#include "sim/event_queue.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E7 / Table IV",
                       "Background-load sensitivity (profiled under BL)");

    ExperimentHarness harness;

    struct LoadCase {
        BackgroundKind kind;
        const std::vector<paper::AppRow>& paper_rows;
    };
    const LoadCase cases[] = {
        {BackgroundKind::kBaseline, paper::TableIV_BL()},
        {BackgroundKind::kNoLoad, paper::TableIV_NL()},
        {BackgroundKind::kHeavy, paper::TableIV_HL()},
    };

    // Fan the 6 apps × 3 loads grid across the batch layer, then render the
    // rows in the original (app-major) order.
    std::vector<ComparisonJob> jobs;
    for (const std::string& app : EvaluationAppNames()) {
        for (const LoadCase& load_case : cases) {
            ExperimentOptions options;
            options.profile_runs = args.ProfileRuns();
            options.seed = 2017;
            options.profile_load = BackgroundKind::kBaseline;  // §V-C: BL data
            options.run_load = load_case.kind;
            // Off by default: the gated snapshot compares vs interactive.
            options.baseline_cpu_governor = args.baseline;
            jobs.push_back(ComparisonJob{app, options});
        }
    }
    const uint64_t events_before = TotalExecutedEvents();
    const double wall_start = bench::MonotonicSeconds();
    const std::vector<ExperimentOutcome> outcomes =
        harness.RunComparisons(std::move(jobs), args.batch);
    const double wall_seconds = bench::MonotonicSeconds() - wall_start;
    const uint64_t events_executed = TotalExecutedEvents() - events_before;

    TextTable table({"Application", "Load", "Perf (paper)", "Perf (ours)",
                     "Energy (paper)", "Energy (ours)"});
    size_t i = 0;
    for (const std::string& app : EvaluationAppNames()) {
        for (const LoadCase& load_case : cases) {
            const ExperimentOutcome& outcome = outcomes[i++];
            double paper_perf = 0.0;
            double paper_energy = 0.0;
            for (const auto& row : load_case.paper_rows) {
                if (row.app == app) {
                    paper_perf = row.perf_delta_pct;
                    paper_energy = row.energy_savings_pct;
                }
            }
            table.AddRow({app, ToString(load_case.kind),
                          StrFormat("%+.1f%%", paper_perf),
                          StrFormat("%+.1f%%", outcome.perf_delta_pct),
                          StrFormat("%.1f%%", paper_energy),
                          StrFormat("%.1f%%", outcome.energy_savings_pct)});
        }
        table.AddSeparator();
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Profiling data and targets always come from the baseline load;\n"
                "mismatched runtime loads reduce savings (most visibly for\n"
                "Spotify), as the paper reports.\n\n");

    JsonValue doc = JsonValue::MakeObject();
    doc.Set("schema", 1);
    doc.Set("bench", "table4_background_loads");
    doc.Set("root_seed", "2017");
    doc.Set("fast", args.fast);
    doc.Set("profile_runs", args.ProfileRuns());
    JsonValue rows = JsonValue::MakeArray();
    size_t j = 0;
    for (const std::string& app : EvaluationAppNames()) {
        for (const LoadCase& load_case : cases) {
            const ExperimentOutcome& outcome = outcomes[j++];
            JsonValue entry = JsonValue::MakeObject();
            entry.Set("app", app);
            entry.Set("load", ToString(load_case.kind));
            entry.Set("perf_delta_pct",
                      StrFormat("%.6g", outcome.perf_delta_pct));
            entry.Set("energy_savings_pct",
                      StrFormat("%.6g", outcome.energy_savings_pct));
            entry.Set("default_energy_j",
                      StrFormat("%.6g", outcome.default_run.energy_j));
            entry.Set("controller_energy_j",
                      StrFormat("%.6g", outcome.controller_run.energy_j));
            rows.Append(std::move(entry));
        }
    }
    doc.Set("rows", std::move(rows));
    const std::string json_path =
        bench::JsonPathArg(argc, argv, "BENCH_table4.json");
    bench::WriteSnapshotFile(json_path, doc.Dump(2) + "\n");
    bench::WritePerfMeta(json_path, wall_seconds, events_executed);
    return 0;
}
