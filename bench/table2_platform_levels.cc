/**
 * @file
 * E3 — Table II: the Nexus 6 CPU frequency and memory-bandwidth tables.
 * Trivially reproduced from the platform model; printed here so the bench
 * suite covers every table in the paper.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "soc/nexus6.h"

int
main()
{
    using namespace aeo;
    bench::PrintHeader("E3 / Table II", "CPU frequencies and memory bandwidths");

    const FrequencyTable freqs = MakeNexus6FrequencyTable();
    const BandwidthTable bws = MakeNexus6BandwidthTable();

    TextTable table({"#", "CPU freq (GHz)", "volts (model)", "#", "Mem BW (MBps)"});
    const int rows = freqs.size();
    for (int i = 0; i < rows; ++i) {
        const std::string bw_idx = i < bws.size() ? StrFormat("%d", i + 1) : "";
        const std::string bw_val =
            i < bws.size() ? StrFormat("%.0f", bws.BandwidthAt(i).value()) : "";
        table.AddRow({StrFormat("%d", i + 1),
                      StrFormat("%.4f", freqs.FrequencyAt(i).value()),
                      StrFormat("%.3f", freqs.VoltageAt(i).value()), bw_idx, bw_val});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("18 CPU levels x 13 bandwidth levels = %d system configurations\n",
                freqs.size() * bws.size());
    return 0;
}
