/**
 * @file
 * E5 — Figure 4: histograms of CPU-frequency residency, our controller vs
 * the default governor, for all six applications. The paper's headline
 * shapes: the default puts 12.7–27.9 % of time at level 10 (the interactive
 * governor's hispeed_freq) and, for several apps, significant time at the
 * top level; the controller concentrates on a few app-specific levels
 * (e.g. AngryBirds on 3 and 5, Spotify on 1 and 3).
 */
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "core/experiment.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E5 / Fig. 4", "CPU-frequency residency: controller vs default");

    ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = args.ProfileRuns();
    options.seed = 2017;

    for (const std::string& app : EvaluationAppNames()) {
        const ExperimentOutcome outcome = harness.RunComparison(app, options);
        bench::PrintResidencyComparison(app, outcome.default_run,
                                        outcome.controller_run,
                                        /*bandwidth=*/false);
        const double default_l10 = outcome.default_run.cpu_residency[9] * 100.0;
        std::printf("default residency at hispeed level 10: %.1f%% "
                    "(paper range across apps: 12.7-27.9%%)\n\n",
                    default_l10);
        std::fflush(stdout);
    }
    return 0;
}
