/**
 * @file
 * E-het / Table VI (our extension beyond the paper's Nexus 6): the
 * coordinated controller on an Exynos 5433-style big.LITTLE platform. The
 * heterogeneous LP optimizes over the convex-hull-pruned
 * (big, LITTLE, bandwidth, placement) cross-product from
 * EnumerateHetConfigs() and is compared, at the interactive governor's
 * delivered QoS, against two per-cluster stock baselines: interactive on
 * both frequency domains and the community lulzactive governor on both.
 *
 * Emits BENCH_table6.json (override with --json=PATH): a deterministic,
 * jobs-invariant snapshot of the per-app outcomes, %.6g-rounded, diffed
 * byte-for-byte in CI (the biglittle-smoke job) against
 * bench/snapshots/BENCH_table6.json at --jobs=1 and --jobs=4. Wall time and
 * event throughput go to the <snapshot>.perf.json sidecar.
 */
#include <cstdio>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"
#include "core/het_config_space.h"
#include "power/power_model.h"
#include "sim/event_queue.h"
#include "soc/exynos5433.h"

namespace {

using namespace aeo;

/** A fresh Exynos 5433-style device for one measurement run. */
DeviceFactory
MakeExynos5433Factory()
{
    return [](uint64_t seed) {
        DeviceConfig config;
        config.seed = seed;
        config.topology = MakeExynos5433Topology();
        config.power_params = MakeExynos5433PowerParams();
        return std::make_unique<Device>(config);
    };
}

/** One application's three runs and the derived comparisons. */
struct BigLittleOutcome {
    RunResult interactive_run;
    RunResult lulzactive_run;
    RunResult controller_run;
    size_t profiled_configs = 0;
};

/**
 * The §V procedure transplanted to the heterogeneous platform: baseline
 * runs under both stock governors, profile the pruned cross-product under
 * the baseline load, then run the controller against the interactive
 * governor's delivered performance. Self-contained per app, so the app grid
 * fans out across the batch layer with bit-identical results at any worker
 * count (profiling inside each job is forced serial — pools never nest).
 */
BigLittleOutcome
RunOneApp(const ExperimentHarness& harness, const std::string& app,
          const std::vector<SystemConfig>& grid, int profile_runs)
{
    constexpr uint64_t kSeed = 2017;
    BigLittleOutcome outcome;
    outcome.profiled_configs = grid.size();
    outcome.interactive_run =
        harness.RunDefault(app, BackgroundKind::kBaseline, kSeed);
    outcome.lulzactive_run =
        harness.RunDefault(app, BackgroundKind::kBaseline, kSeed, "lulzactive");

    ProfilerOptions profiler_options;
    profiler_options.configs = grid;
    profiler_options.runs = profile_runs;
    profiler_options.measure_duration = GetAppScenario(app).profile_duration;
    profiler_options.load = BackgroundKind::kBaseline;
    profiler_options.seed = kSeed + 1000;
    profiler_options.batch.jobs = 1;
    const OfflineProfiler profiler(MakeExynos5433Factory());
    ProfileTable table =
        profiler.Profile(MakeAppSpecByName(app), profiler_options);
    table = table.PruneEpsilonDominated(0.01);
    // §V-A's other exclusion, automated: cut the steep tail of the frontier
    // (big+LITTLE both near fmax) that only destabilizes the controller,
    // but never below the target QoS region.
    table = table.PruneSteepTail(
        3.0, outcome.interactive_run.avg_gips / table.base_speed_gips() * 1.02);

    ExperimentOptions options;
    options.seed = kSeed;
    // Phase-heterogeneous apps deliver demand bursts worth several cycles
    // of speedup; banking and slewed spending turn them into knee dwells
    // (race-to-idle) instead of being truncated at the regulator clamp.
    options.controller.regulator_surplus_band = 8.0;
    options.controller.regulator_max_step_down = 0.06;
    outcome.controller_run = harness.RunWithController(
        app, table, outcome.interactive_run.avg_gips, options, kSeed + 2000);
    return outcome;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E-het / Table VI",
                       "Heterogeneous LP on big.LITTLE (Exynos 5433-style)");

    // The candidate space: per-cluster ladders pruned to their (f, P) lower
    // hulls (bit-identical to the exhaustive LP — the oracle property test
    // in tests/core/het_config_space_test.cc), crossed with the bandwidth
    // grid and every admissible thread placement. --fast keeps only the
    // extreme bandwidths, mirroring the paper's sparse profiling.
    const PowerModel model(MakeExynos5433PowerParams());
    const ClusterTopology topology = MakeExynos5433Topology();
    HetSpaceOptions space;
    if (args.fast) {
        space.bw_levels = {0, 2, 4, kExynos5433BwLevels - 1};
    }
    const std::vector<SystemConfig> grid =
        EnumerateHetConfigs(topology, model, space);
    HetSpaceOptions exhaustive;
    exhaustive.prune_convex = false;
    const size_t full_size = EnumerateHetConfigs(topology, model, exhaustive).size();
    std::printf("Candidate grid: %zu configurations (hull-pruned from %zu)\n\n",
                grid.size(), full_size);

    const ExperimentHarness harness(MakeExynos5433Factory());
    const std::vector<std::string> apps = EvaluationAppNames();
    const int profile_runs = args.ProfileRuns();

    const uint64_t events_before = TotalExecutedEvents();
    const double wall_start = bench::MonotonicSeconds();
    const BatchRunner runner(args.batch);
    const std::vector<BigLittleOutcome> outcomes =
        runner.RunIndexed<BigLittleOutcome>(apps.size(), [&](size_t i) {
            return RunOneApp(harness, apps[i], grid, profile_runs);
        });
    const double wall_seconds = bench::MonotonicSeconds() - wall_start;
    const uint64_t events_executed = TotalExecutedEvents() - events_before;

    TextTable table({"Application", "Perf vs int", "Energy vs int",
                     "Energy vs lulz", "E_int (J)", "E_lulz (J)", "E_ours (J)"});
    for (size_t i = 0; i < apps.size(); ++i) {
        const BigLittleOutcome& outcome = outcomes[i];
        table.AddRow(
            {apps[i],
             StrFormat("%+.1f%%", outcome.controller_run.PerformanceDeltaPercent(
                                      outcome.interactive_run)),
             StrFormat("%.1f%%", outcome.controller_run.EnergySavingsPercent(
                                     outcome.interactive_run)),
             StrFormat("%.1f%%", outcome.controller_run.EnergySavingsPercent(
                                     outcome.lulzactive_run)),
             StrFormat("%.1f", outcome.interactive_run.energy_j),
             StrFormat("%.1f", outcome.lulzactive_run.energy_j),
             StrFormat("%.1f", outcome.controller_run.energy_j)});
    }
    double total_int = 0.0, total_lulz = 0.0, total_ours = 0.0;
    for (const BigLittleOutcome& outcome : outcomes) {
        total_int += outcome.interactive_run.energy_j;
        total_lulz += outcome.lulzactive_run.energy_j;
        total_ours += outcome.controller_run.energy_j;
    }
    table.AddRow({"Total", "",
                  StrFormat("%.1f%%", (1.0 - total_ours / total_int) * 100.0),
                  StrFormat("%.1f%%", (1.0 - total_ours / total_lulz) * 100.0),
                  StrFormat("%.1f", total_int), StrFormat("%.1f", total_lulz),
                  StrFormat("%.1f", total_ours)});
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Positive energy = the heterogeneous LP saves energy against the\n"
                "per-cluster stock governor at the interactive governor's QoS;\n"
                "the LP places threads and sets both DVFS domains per slot.\n\n");

    JsonValue doc = JsonValue::MakeObject();
    doc.Set("schema", 1);
    doc.Set("bench", "table6_biglittle");
    doc.Set("root_seed", "2017");
    doc.Set("fast", args.fast);
    doc.Set("profile_runs", profile_runs);
    doc.Set("grid_configs", static_cast<int>(grid.size()));
    doc.Set("grid_full", static_cast<int>(full_size));
    JsonValue rows = JsonValue::MakeArray();
    for (size_t i = 0; i < apps.size(); ++i) {
        const BigLittleOutcome& outcome = outcomes[i];
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("app", apps[i]);
        entry.Set("perf_vs_interactive_pct",
                  StrFormat("%.6g", outcome.controller_run.PerformanceDeltaPercent(
                                        outcome.interactive_run)));
        entry.Set("energy_vs_interactive_pct",
                  StrFormat("%.6g", outcome.controller_run.EnergySavingsPercent(
                                        outcome.interactive_run)));
        entry.Set("energy_vs_lulzactive_pct",
                  StrFormat("%.6g", outcome.controller_run.EnergySavingsPercent(
                                        outcome.lulzactive_run)));
        entry.Set("interactive_energy_j",
                  StrFormat("%.6g", outcome.interactive_run.energy_j));
        entry.Set("lulzactive_energy_j",
                  StrFormat("%.6g", outcome.lulzactive_run.energy_j));
        entry.Set("controller_energy_j",
                  StrFormat("%.6g", outcome.controller_run.energy_j));
        entry.Set("interactive_avg_gips",
                  StrFormat("%.6g", outcome.interactive_run.avg_gips));
        entry.Set("controller_avg_gips",
                  StrFormat("%.6g", outcome.controller_run.avg_gips));
        rows.Append(std::move(entry));
    }
    doc.Set("rows", std::move(rows));
    doc.Set("total_energy_vs_interactive_pct",
            StrFormat("%.6g", (1.0 - total_ours / total_int) * 100.0));
    doc.Set("total_energy_vs_lulzactive_pct",
            StrFormat("%.6g", (1.0 - total_ours / total_lulz) * 100.0));
    const std::string json_path =
        bench::JsonPathArg(argc, argv, "BENCH_table6.json");
    bench::WriteSnapshotFile(json_path, doc.Dump(2) + "\n");
    bench::WritePerfMeta(json_path, wall_seconds, events_executed);
    return 0;
}
