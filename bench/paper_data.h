/**
 * @file
 * The published numbers from the paper's evaluation, used by every bench
 * to print paper-vs-measured comparisons (recorded in EXPERIMENTS.md).
 */
#ifndef AEO_BENCH_PAPER_DATA_H_
#define AEO_BENCH_PAPER_DATA_H_

#include <string>
#include <vector>

#include "common/units.h"

namespace aeo::paper {

/** One application row of Tables III / IV / V. */
struct AppRow {
    std::string app;
    double perf_delta_pct;
    double energy_savings_pct;
};

/** Table III: coordinated controller vs default governors, baseline load. */
const std::vector<AppRow>& TableIII();

/** Table IV rows for one load (columns BL / NL / HL). */
const std::vector<AppRow>& TableIV_BL();
const std::vector<AppRow>& TableIV_NL();
const std::vector<AppRow>& TableIV_HL();

/** Table V: CPU-only DVFS controller vs default governors. */
const std::vector<AppRow>& TableV();

/** Table I anchor rows (AngryBirds sample profile). */
struct ProfileRow {
    int cpu_level_1based;
    int bw_level_1based;
    double speedup;
    Milliwatts power_mw;
};
const std::vector<ProfileRow>& TableI();

/** Fig. 1 headline facts: default governor on the eBook reader. */
inline constexpr double kFig1TopFreqResidencyPct = 10.0;   // >10 % at level 18
inline constexpr double kFig1Level10ResidencyPct = 15.0;   // ~15 % at level 10

/** §V-A1 overhead figures. */
inline constexpr double kPerfOverheadFractionAt1s = 0.04;
inline constexpr double kPerfPowerOverheadMw = 15.0;
inline constexpr double kControllerComputeMs = 10.0;   // < 10 ms per cycle
inline constexpr double kControllerComputePowerMw = 25.0;
inline constexpr double kActuationPowerMw = 14.0;

}  // namespace aeo::paper

#endif  // AEO_BENCH_PAPER_DATA_H_
