/**
 * @file
 * E13 — the §V-C extension: load-adaptive profile selection.
 *
 * The paper observes that profiling data collected under one background
 * load can misrepresent another (their MobileBench NL row goes negative
 * with BL data, and recovers to +11.1 % after re-profiling under NL). This
 * harness profiles MobileBench under all three loads, then evaluates the
 * controller in each runtime condition two ways:
 *
 *  1. the paper's configuration — always the baseline-load (BL) table;
 *  2. the proposed extension — the table whose free-memory signature is
 *     nearest to the runtime environment's.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"
#include "core/load_adaptive.h"

namespace {

using namespace aeo;

}  // namespace

int
main(int argc, char** argv)
{
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E13 / §V-C extension",
                       "Load-adaptive profile selection (MobileBench)");

    const ExperimentHarness harness;
    const std::string app = "MobileBench";
    const BackgroundKind kinds[] = {BackgroundKind::kBaseline,
                                    BackgroundKind::kNoLoad,
                                    BackgroundKind::kHeavy};

    // Profile once under each load, recording the free-memory signature and
    // the per-load default performance (the correct target for that load).
    std::vector<LoadConditionProfile> conditions;
    for (const BackgroundKind kind : kinds) {
        ExperimentOptions options;
        options.profile_runs = args.ProfileRuns();
        options.profile_load = kind;
        options.seed = 2017;
        ProfileTable table = harness.ProfileApp(app, options);
        const RunResult default_run = harness.RunDefault(app, kind, options.seed);
        conditions.push_back(LoadConditionProfile{
            MakeBackgroundEnv(kind).free_memory_mb, std::move(table),
            default_run.avg_gips});
    }
    const LoadAdaptiveProfile adaptive(std::move(conditions));

    TextTable table({"run load", "energy (BL table)", "energy (adaptive)",
                     "perf (BL table)", "perf (adaptive)"});
    for (const BackgroundKind kind : kinds) {
        ExperimentOptions options;
        options.profile_runs = args.ProfileRuns();
        options.run_load = kind;
        options.seed = 2017;

        // Paper configuration: BL data regardless of the runtime load.
        options.profile_load = BackgroundKind::kBaseline;
        const ExperimentOutcome paper_cfg = harness.RunComparison(app, options);

        // Extension: select by the runtime environment's free memory.
        const double runtime_free = MakeBackgroundEnv(kind).free_memory_mb;
        const LoadConditionProfile& selected = adaptive.SelectFor(runtime_free);
        const RunResult default_run = harness.RunDefault(app, kind, options.seed);
        const RunResult adaptive_run = harness.RunWithController(
            app, selected.table, selected.default_gips, options,
            options.seed + 9000);

        table.AddRow({ToString(kind),
                      StrFormat("%.1f%%", paper_cfg.energy_savings_pct),
                      StrFormat("%.1f%%",
                                adaptive_run.EnergySavingsPercent(default_run)),
                      StrFormat("%+.1f%%", paper_cfg.perf_delta_pct),
                      StrFormat("%+.1f%%",
                                adaptive_run.PerformanceDeltaPercent(default_run))});
        std::fflush(stdout);
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Selecting the profile by the runtime free-memory signature\n"
                "(1 GB / 500 MB / 134 MB for NL / BL / HL) recovers accuracy the\n"
                "fixed BL table loses under mismatched loads — the paper's\n"
                "re-profiling observation, automated.\n");
    return 0;
}
