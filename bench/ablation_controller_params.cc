/**
 * @file
 * E11 — controller design-choice ablations the paper motivates but does not
 * table:
 *
 *  - control cycle duration T (§IV-B picks 2 s because perf's 100 ms floor
 *    costs 40 % CPU — shorter cycles buy responsiveness with measurement
 *    overhead);
 *  - the Kalman base-speed estimator on/off (§III-B3);
 *  - the minimum dwell (200 ms, §V-A).
 */
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E11 / controller ablations",
                       "Control cycle, Kalman filter, minimum dwell (AngryBirds)");

    const ExperimentHarness harness;
    const std::string app = "AngryBirds";

    TextTable table({"Variant", "Perf delta", "Energy savings"});

    const auto run = [&](const std::string& label, ControllerConfig config) {
        ExperimentOptions options;
        options.profile_runs = args.ProfileRuns();
        options.seed = 2017;
        options.controller = config;
        const ExperimentOutcome outcome = harness.RunComparison(app, options);
        table.AddRow({label, StrFormat("%+.2f%%", outcome.perf_delta_pct),
                      StrFormat("%.1f%%", outcome.energy_savings_pct)});
        std::fflush(stdout);
    };

    // Control cycle sweep. Shorter cycles pay proportionally more perf-tool
    // overhead (§V-A1: 4 % at 1 s scaling inversely with the period).
    for (const int cycle_ms : {1000, 2000, 4000, 8000}) {
        ControllerConfig config;
        config.control_cycle = SimTime::Millis(cycle_ms);
        run(StrFormat("T = %d ms", cycle_ms), config);
    }
    table.AddSeparator();

    // Kalman estimator ablation.
    {
        ControllerConfig config;
        run("Kalman filter on (paper)", config);
        config.use_kalman = false;
        run("Kalman filter off (b̂ frozen at profile)", config);
    }
    table.AddSeparator();

    // Minimum dwell sweep.
    for (const int dwell_ms : {100, 200, 500, 1000}) {
        ControllerConfig config;
        config.min_dwell = SimTime::Millis(dwell_ms);
        run(StrFormat("min dwell = %d ms", dwell_ms), config);
    }

    std::printf("%s\n", table.ToString().c_str());
    std::printf("The paper's operating point (T = 2 s, 200 ms dwell, Kalman on)\n"
                "balances measurement overhead against responsiveness.\n");
    return 0;
}
