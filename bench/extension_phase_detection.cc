/**
 * @file
 * E15 — the §V-B open problem: "how do we define and identify application
 * phases?"
 *
 * The paper identifies multi-phase applications (MobileBench) as the class
 * its controller handles worst, and names phase identification from PMU
 * measurements as the missing prerequisite. This harness answers the
 * prerequisite with the controller's own measurement stream: it runs
 * MobileBench under the controller, feeds each cycle's measured GIPS to the
 * online PhaseDetector, and reports how cleanly the load/view phases
 * separate — and contrasts a single-phase app (MX Player) where no phase
 * structure should be detected.
 */
#include <cstdio>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "control/phase_detector.h"
#include "core/experiment.h"
#include "core/online_controller.h"
#include "platform/sim_platform.h"

namespace {

using namespace aeo;

struct Detection {
    size_t phases;
    uint64_t switches;
    uint64_t cycles;
    std::vector<PhaseInfo> info;
};

Detection
DetectPhases(const std::string& app)
{
    const ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = 1;
    options.seed = 51;
    const RunResult baseline = harness.RunDefault(app, BackgroundKind::kBaseline, 51);
    const ProfileTable table = harness.ProfileApp(app, options);

    DeviceConfig config;
    config.seed = 53;
    Device device(config);
    device.LaunchApp(MakeAppSpecByName(app));
    ControllerConfig controller_config;
    controller_config.target_gips = baseline.avg_gips;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, controller_config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(60));
    controller.Stop();

    PhaseDetector detector;
    for (const ControlCycleRecord& record : controller.history()) {
        if (record.measured_gips > 0.0) {
            detector.Classify(record.measured_gips);
        }
    }
    return Detection{detector.phases().size(), detector.switch_count(),
                     detector.sample_count(), detector.phases()};
}

}  // namespace

int
main()
{
    SetLogLevel(LogLevel::kWarn);
    bench::PrintHeader("E15 / §V-B extension",
                       "Online phase detection from the controller's measurements");

    TextTable table({"application", "phases found", "centroids (GIPS)",
                     "switch rate"});
    for (const std::string& app : {std::string("MobileBench"), std::string("MXPlayer"),
                                   std::string("Spotify")}) {
        const Detection detection = DetectPhases(app);
        std::string centroids;
        for (const PhaseInfo& phase : detection.info) {
            if (phase.hits < 2) {
                continue;  // transient clusters
            }
            if (!centroids.empty()) {
                centroids += " / ";
            }
            centroids += StrFormat("%.2f(x%llu)", phase.centroid,
                                   static_cast<unsigned long long>(phase.hits));
        }
        table.AddRow({app, StrFormat("%zu", detection.phases), centroids,
                      StrFormat("%.2f/cycle",
                                static_cast<double>(detection.switches) /
                                    static_cast<double>(detection.cycles))});
        std::fflush(stdout);
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("MobileBench's load/view structure separates into distinct\n"
                "clusters from the controller's own per-cycle GIPS stream — the\n"
                "prerequisite the paper poses in SV-B — while steady apps\n"
                "collapse to one phase. Per-phase targets/tables (as in the\n"
                "paper's reference [23]) can hang off these stable phase ids.\n");
    return 0;
}
