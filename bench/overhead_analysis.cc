/**
 * @file
 * E9 — §V-A1: controller overhead analysis.
 *
 * google-benchmark microbenchmarks of the per-cycle computation (performance
 * regulation + energy optimization across backends and table sizes, up to
 * the full 234-configuration Nexus 6 space), followed by a report comparing
 * the modelled measurement/actuation overheads against the paper's numbers:
 * perf costs 4 % CPU and 15 mW at a 1 s period; the regulator+optimizer run
 * in <10 ms at ~25 mW; frequency transitions cost ~14 mW.
 */
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "core/energy_optimizer.h"
#include "core/online_controller.h"
#include "core/performance_regulator.h"
#include "kernel/perf_tool.h"
#include "paper_data.h"
#include "sim/simulator.h"
#include "stats/comparison.h"

namespace {

using namespace aeo;

ProfileTable
MakeTable(int configs)
{
    Rng rng(99);
    std::vector<ProfileEntry> entries;
    double speedup = 1.0;
    for (int i = 0; i < configs; ++i) {
        entries.push_back(ProfileEntry{
            SystemConfig{i / 13, i % 13}, speedup,
            Milliwatts(1000.0 + 15.0 * i + rng.Uniform(0, 30))});
        speedup += rng.Uniform(0.002, 0.02);
    }
    return ProfileTable("bench", std::move(entries), 0.2);
}

void
BM_EnergyOptimizerHull(benchmark::State& state)
{
    const ProfileTable table = MakeTable(static_cast<int>(state.range(0)));
    const EnergyOptimizer optimizer(&table, OptimizerBackend::kConvexHull);
    Rng rng(7);
    for (auto _ : state) {
        const double s = rng.Uniform(table.min_speedup(), table.max_speedup());
        benchmark::DoNotOptimize(optimizer.Optimize(s, 2.0));
    }
}
BENCHMARK(BM_EnergyOptimizerHull)->Arg(18)->Arg(117)->Arg(234);

void
BM_EnergyOptimizerPairSearch(benchmark::State& state)
{
    // The paper's O(N²) formulation.
    const ProfileTable table = MakeTable(static_cast<int>(state.range(0)));
    const EnergyOptimizer optimizer(&table, OptimizerBackend::kPairSearch);
    Rng rng(7);
    for (auto _ : state) {
        const double s = rng.Uniform(table.min_speedup(), table.max_speedup());
        benchmark::DoNotOptimize(optimizer.Optimize(s, 2.0));
    }
}
BENCHMARK(BM_EnergyOptimizerPairSearch)->Arg(18)->Arg(117)->Arg(234);

void
BM_EnergyOptimizerSimplex(benchmark::State& state)
{
    const ProfileTable table = MakeTable(static_cast<int>(state.range(0)));
    const EnergyOptimizer optimizer(&table, OptimizerBackend::kSimplex);
    Rng rng(7);
    for (auto _ : state) {
        const double s = rng.Uniform(table.min_speedup(), table.max_speedup());
        benchmark::DoNotOptimize(optimizer.Optimize(s, 2.0));
    }
}
BENCHMARK(BM_EnergyOptimizerSimplex)->Arg(18)->Arg(117)->Arg(234);

void
BM_PerformanceRegulatorStep(benchmark::State& state)
{
    RegulatorConfig config;
    config.target_gips = 0.2;
    config.initial_base_speed = 0.129;
    config.min_speedup = 1.0;
    config.max_speedup = 2.0;
    PerformanceRegulator regulator(config);
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(regulator.Step(0.2 + rng.Gaussian(0.0, 0.01)));
    }
}
BENCHMARK(BM_PerformanceRegulatorStep);

void
BM_FullControlCycleComputation(benchmark::State& state)
{
    // Regulator step + optimization over the full 234-config space: the
    // computation the paper bounds at <10 ms per 2 s cycle.
    const ProfileTable table = MakeTable(234);
    const EnergyOptimizer optimizer(&table, OptimizerBackend::kConvexHull);
    RegulatorConfig config;
    config.target_gips = 0.2;
    config.initial_base_speed = 0.2 / table.min_speedup();
    config.min_speedup = table.min_speedup();
    config.max_speedup = table.max_speedup();
    PerformanceRegulator regulator(config);
    Rng rng(7);
    for (auto _ : state) {
        const double s = regulator.Step(0.2 + rng.Gaussian(0.0, 0.01));
        benchmark::DoNotOptimize(optimizer.Optimize(s, 2.0));
    }
}
BENCHMARK(BM_FullControlCycleComputation);

void
PrintOverheadReport()
{
    std::printf("\n== E9 / Section V-A1: modelled instrumentation overheads ==\n");
    Simulator sim;
    Pmu pmu;
    PerfToolConfig at_1s;
    at_1s.sampling_period = SimTime::FromSeconds(1);
    PerfTool perf(&sim, &pmu, 1, at_1s);
    perf.Start();

    ComparisonReport report("perf + controller overheads (paper vs model)");
    report.Add("perf CPU overhead @1s period",
               paper::kPerfOverheadFractionAt1s * 100.0,
               perf.cpu_overhead_fraction() * 100.0, "%");
    report.Add("perf power overhead @1s", paper::kPerfPowerOverheadMw,
               perf.power_overhead_mw(), "mW");
    ControllerConfig controller;
    report.Add("regulator+optimizer compute budget", paper::kControllerComputeMs,
               controller.compute_seconds.milliseconds(), "ms");
    report.Add("controller compute power", paper::kControllerComputePowerMw,
               controller.compute_power_mw.value(), "mW");
    report.Add("actuation power", paper::kActuationPowerMw,
               controller.actuation_power_mw.value(), "mW");
    std::printf("%s\n", report.ToString().c_str());
    std::printf("The microbenchmarks above verify the per-cycle computation is\n"
                "orders of magnitude below the paper's 10 ms budget even at the\n"
                "full 234-configuration search space.\n\n");
    perf.Stop();
}

}  // namespace

int
main(int argc, char** argv)
{
    aeo::SetLogLevel(aeo::LogLevel::kWarn);
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    PrintOverheadReport();
    return 0;
}
