#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"

namespace aeo::bench {

BenchArgs
ParseBenchArgs(int argc, char** argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fast") == 0) {
            args.fast = true;
        } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
            args.batch.jobs = std::atoi(argv[i] + 7);
        } else if (std::strncmp(argv[i], "--runs=", 7) == 0) {
            args.runs = std::atoi(argv[i] + 7);
        } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
            args.out = argv[i] + 6;
        } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
            args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
        } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
            args.baseline = argv[i] + 11;
        }
    }
    return args;
}

double
MonotonicSeconds()
{
    // aeo-lint: allow(determinism) -- the single sanctioned wall-clock read
    // in bench/; feeds only perf sidecars, never gated snapshot bytes.
    using WallClock = std::chrono::steady_clock;
    return std::chrono::duration<double>(WallClock::now().time_since_epoch())
        .count();
}

std::string
JsonPathArg(int argc, char** argv, const std::string& default_path)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            return argv[i] + 7;
        }
    }
    return default_path;
}

void
WriteSnapshotFile(const std::string& path, const std::string& json_text)
{
    std::ofstream out(path);
    AEO_ASSERT(out.good(), "cannot open %s", path.c_str());
    out << json_text;
    out.close();
    std::printf("Wrote %s\n", path.c_str());
}

void
WritePerfMeta(const std::string& snapshot_path, double wall_seconds,
              uint64_t events_executed)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("wall_seconds", StrFormat("%.3f", wall_seconds));
    doc.Set("events_executed", events_executed);
    doc.Set("events_per_second",
            StrFormat("%.6g", wall_seconds > 0.0
                                  ? static_cast<double>(events_executed) /
                                        wall_seconds
                                  : 0.0));
    doc.Set("hardware_threads",
            static_cast<int>(std::thread::hardware_concurrency()));
    const std::string path = snapshot_path + ".perf.json";
    std::ofstream out(path);
    AEO_ASSERT(out.good(), "cannot open %s", path.c_str());
    out << doc.Dump(2) << "\n";
    out.close();
    std::printf("Wrote %s\n", path.c_str());
}

void
PrintHeader(const std::string& experiment_id, const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
    std::printf("Reproduction of Rao et al., HPCA 2017 (simulated Nexus 6)\n");
    std::printf("================================================================\n\n");
}

std::vector<std::string>
CpuLevelLabels()
{
    std::vector<std::string> labels;
    for (int level = 1; level <= 18; ++level) {
        labels.push_back(StrFormat("f%02d", level));
    }
    return labels;
}

std::vector<std::string>
BwLevelLabels()
{
    std::vector<std::string> labels;
    for (int level = 1; level <= 13; ++level) {
        labels.push_back(StrFormat("bw%02d", level));
    }
    return labels;
}

std::string
RenderResidency(const std::vector<double>& fractions,
                const std::vector<std::string>& labels)
{
    std::string out;
    double max_fraction = 0.0;
    for (const double f : fractions) {
        max_fraction = f > max_fraction ? f : max_fraction;
    }
    for (size_t i = 0; i < fractions.size(); ++i) {
        const size_t bar =
            max_fraction > 0.0
                ? static_cast<size_t>(fractions[i] / max_fraction * 40.0 + 0.5)
                : 0;
        out += StrFormat("  %-5s %6.2f%% |%s\n", labels[i].c_str(),
                         fractions[i] * 100.0, std::string(bar, '#').c_str());
    }
    return out;
}

void
PrintResidencyComparison(const std::string& app, const aeo::RunResult& default_run,
                         const aeo::RunResult& controller_run, bool bandwidth)
{
    const auto labels = bandwidth ? BwLevelLabels() : CpuLevelLabels();
    const auto& def = bandwidth ? default_run.bw_residency : default_run.cpu_residency;
    const auto& ctl =
        bandwidth ? controller_run.bw_residency : controller_run.cpu_residency;
    std::printf("--- %s: default governor ---\n%s", app.c_str(),
                RenderResidency(def, labels).c_str());
    std::printf("--- %s: our controller ---\n%s\n", app.c_str(),
                RenderResidency(ctl, labels).c_str());
}

}  // namespace aeo::bench
