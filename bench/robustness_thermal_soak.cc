/**
 * @file
 * R2 — Thermal soak: a sustained-load run on a fast-heating package with the
 * msm_thermal adversary staging the CPU frequency ceiling down, comparing a
 * *clamp-aware* controller (read-back verification + feasible-set masking +
 * drift correction) against a *clamp-oblivious* one that trusts every write
 * (the pre-hardening loop).
 *
 * The oblivious controller keeps scheduling configurations the throttled
 * device cannot reach, so its delivered performance sags while its LP still
 * believes the plan; the aware controller re-solves over the reachable
 * subset and holds the target whenever the cap permits (safe-mode envelope
 * otherwise).
 *
 * Emits robustness_thermal_soak.csv: one row per control cycle with zone
 * temperature, clamp stage, requested (target) vs delivered GIPS and
 * accumulated energy for both controllers.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/batch_runner.h"
#include "core/offline_profiler.h"
#include "core/online_controller.h"
#include "core/scenarios.h"
#include "device/device.h"
#include "platform/sim_platform.h"
#include "soc/nexus6.h"

namespace aeo {
namespace {

constexpr const char kApp[] = "AngryBirds";
constexpr uint64_t kDefaultSeed = 2017;

/** Fast-heating package so the soak spans several clamp stages. */
ThermalParams
SoakPackage()
{
    ThermalParams params;
    params.resistance_c_per_w = 12.0;
    params.capacitance_j_per_c = 1.5;  // RC = 18 s
    return params;
}

MsmThermalParams
SoakThrottling()
{
    MsmThermalParams params;
    params.trigger_temp_c = 32.0;
    params.levels_per_step = 2;
    // AngryBirds profiles CPU levels {0, 2, 4}; a floor of 0 lets the staged
    // cap descend through every profiled row, so a full clamp leaves only
    // the base-level rows reachable and the LP plan actually loses configs.
    params.min_cap_level = 0;
    return params;
}

struct SoakRun {
    RunResult result;
    std::vector<ControlCycleRecord> history;
    platform::ActuationStats stats;
    uint64_t safe_mode_cycles = 0;
    int max_stage = 0;
    uint64_t clamp_events = 0;
    bool fallback = false;
};

SoakRun
RunSoak(const ProfileTable& table, double target_gips, SimTime duration,
        bool clamp_aware, uint64_t seed)
{
    DeviceConfig device_config;
    device_config.seed = seed;
    // Heat feeds back into leakage, so the profiled power surface drifts as
    // the package warms — the aware controller's drift detector tracks it.
    device_config.power_params.leak_temp_coeff_per_c = 0.04;
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName(kApp));
    device.EnableThermal(SoakPackage(), SoakThrottling());

    ControllerConfig config;
    config.target_gips = target_gips;
    config.readback_verification = clamp_aware;
    config.drift.enabled = clamp_aware;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(duration);
    controller.Stop();

    SoakRun run;
    run.result = device.CollectResult(clamp_aware ? "clamp-aware"
                                                  : "clamp-oblivious");
    run.history = controller.history();
    run.stats = controller.actuator().stats();
    run.safe_mode_cycles = controller.safe_mode_cycle_count();
    run.max_stage = device.msm_thermal()->max_stage_reached();
    run.clamp_events = device.msm_thermal()->clamp_event_count();
    run.fallback = controller.fallback_engaged();
    return run;
}

/** Clamp stage the cycle planned under, from its recorded cap level. */
int
StageOf(const ControlCycleRecord& record, int max_level)
{
    if (record.cpu_cap_level < 0) {
        return 0;
    }
    const MsmThermalParams params = SoakThrottling();
    const int shed = max_level - record.cpu_cap_level;
    return (shed + params.levels_per_step - 1) / params.levels_per_step;
}

/**
 * The snapshot holds the structural outcome of both soaks — exact integer
 * counters plus %.6g-rounded energy/performance. CI regenerates it at
 * --jobs=1 and --jobs=4 and diffs byte-for-byte against the committed copy.
 */
JsonValue
SnapshotJson(const bench::BenchArgs& args, uint64_t seed, bool fast,
             double target, const SoakRun& aware, const SoakRun& oblivious)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("schema", 1);
    doc.Set("bench", "robustness_thermal_soak");
    doc.Set("app", kApp);
    doc.Set("root_seed", StrFormat("%llu",
                                   static_cast<unsigned long long>(seed)));
    doc.Set("fast", fast);
    doc.Set("profile_runs", args.ProfileRuns());
    doc.Set("target_gips", StrFormat("%.6g", target));
    auto soak_json = [](const SoakRun& run) {
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("cycles", run.history.size());
        entry.Set("energy_j", StrFormat("%.6g", run.result.energy_j));
        entry.Set("avg_gips", StrFormat("%.6g", run.result.avg_gips));
        entry.Set("silent_clamps", run.stats.silent_clamps);
        entry.Set("readback_failures", run.stats.readback_failures);
        entry.Set("safe_mode_cycles", run.safe_mode_cycles);
        entry.Set("max_stage", run.max_stage);
        entry.Set("clamp_events", run.clamp_events);
        entry.Set("fallback", run.fallback);
        return entry;
    };
    doc.Set("clamp_aware", soak_json(aware));
    doc.Set("clamp_oblivious", soak_json(oblivious));
    return doc;
}

}  // namespace
}  // namespace aeo

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kQuiet);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    const bool fast = args.fast;
    const uint64_t seed = args.SeedOr(kDefaultSeed);
    std::string json_path = "BENCH_thermal_soak.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        }
    }
    bench::PrintHeader("R2 / thermal soak",
                       "Sustained load under msm_thermal staging: clamp-aware "
                       "vs clamp-oblivious control");

    const AppScenario scenario = GetAppScenario(kApp);
    ProfilerOptions profiler_options;
    profiler_options.runs = args.ProfileRuns();
    profiler_options.cpu_levels = scenario.profile_cpu_levels;
    profiler_options.measure_duration = scenario.profile_duration;
    profiler_options.seed = seed + 1000;
    profiler_options.batch = args.batch;
    const ProfileTable table =
        OfflineProfiler().Profile(MakeAppSpecByName(kApp), profiler_options);
    const double target = 0.20;  // between AngryBirds' base and saturation
    const SimTime duration =
        fast ? SimTime::FromSeconds(60) : SimTime::FromSeconds(180);

    // The two soaks are independent seeded runs — one batch job each.
    std::vector<std::function<SoakRun()>> soak_tasks;
    soak_tasks.push_back(
        [&] { return RunSoak(table, target, duration, true, seed); });
    soak_tasks.push_back(
        [&] { return RunSoak(table, target, duration, false, seed); });
    std::vector<SoakRun> soaks =
        BatchRunner(args.batch).RunOrdered(std::move(soak_tasks));
    const SoakRun aware = std::move(soaks[0]);
    const SoakRun oblivious = std::move(soaks[1]);

    // --- Per-cycle trace --------------------------------------------------
    const int max_level = MakeNexus6FrequencyTable().max_level();
    CsvWriter csv({"time_s", "temp_c", "cap_level", "clamp_stage",
                   "target_gips", "aware_gips", "aware_power_mw",
                   "aware_safe_mode", "oblivious_gips", "oblivious_power_mw"});
    const size_t cycles =
        std::min(aware.history.size(), oblivious.history.size());
    for (size_t i = 0; i < cycles; ++i) {
        const ControlCycleRecord& a = aware.history[i];
        const ControlCycleRecord& o = oblivious.history[i];
        csv.AddRow({StrFormat("%.1f", a.time_s), StrFormat("%.2f", a.temp_c),
                    StrFormat("%d", a.cpu_cap_level),
                    StrFormat("%d", StageOf(a, max_level)),
                    StrFormat("%.6g", target), StrFormat("%.6g", a.measured_gips),
                    StrFormat("%.6g", a.measured_power_mw.value()),
                    a.safe_mode ? "1" : "0", StrFormat("%.6g", o.measured_gips),
                    StrFormat("%.6g", o.measured_power_mw.value())});
    }
    const std::string csv_path =
        args.OutputPath("robustness_thermal_soak.csv");
    csv.WriteFile(csv_path);

    // --- Summary ----------------------------------------------------------
    auto violation_pct = [&](const SoakRun& run) {
        return std::max(0.0, target - run.result.avg_gips) / target * 100.0;
    };
    TextTable text({"Controller", "Energy (J)", "Avg GIPS", "Violation",
                    "Silent clamps", "Safe-mode cycles", "Max stage",
                    "Fallback"});
    auto add_row = [&](const char* name, const SoakRun& run) {
        text.AddRow({name, StrFormat("%.1f", run.result.energy_j),
                     StrFormat("%.4f", run.result.avg_gips),
                     StrFormat("%.2f%%", violation_pct(run)),
                     StrFormat("%llu",
                               static_cast<unsigned long long>(
                                   run.stats.silent_clamps)),
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           run.safe_mode_cycles)),
                     StrFormat("%d", run.max_stage),
                     run.fallback ? "YES" : "no"});
    };
    add_row("clamp-aware", aware);
    add_row("clamp-oblivious", oblivious);
    std::printf("%s\n", text.ToString().c_str());
    std::printf("Wrote %s (%zu cycles)\n", csv_path.c_str(), cycles);

    std::ofstream snapshot(json_path);
    snapshot << SnapshotJson(args, seed, fast, target, aware, oblivious)
                    .Dump(2)
             << "\n";
    snapshot.close();
    std::printf("Wrote %s\n\n", json_path.c_str());

    std::printf(
        "Adversary: %llu clamp polls, deepest stage %d (cap floor level %d).\n"
        "Aware violation %.2f%% vs oblivious %.2f%%; energy %+.2f%% "
        "relative to oblivious.\n",
        static_cast<unsigned long long>(aware.clamp_events), aware.max_stage,
        SoakThrottling().min_cap_level, violation_pct(aware),
        violation_pct(oblivious),
        oblivious.result.energy_j > 0.0
            ? (aware.result.energy_j / oblivious.result.energy_j - 1.0) * 100.0
            : 0.0);
    return 0;
}
