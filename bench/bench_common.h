/**
 * @file
 * Shared helpers for the experiment harness binaries in bench/: consistent
 * headers, level labels, and residency rendering for the figure benches.
 */
#ifndef AEO_BENCH_BENCH_COMMON_H_
#define AEO_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/batch_runner.h"
#include "device/run_result.h"

namespace aeo::bench {

/** Command-line options shared by the harness binaries. */
struct BenchArgs {
    /** --fast: reduced grids/durations for CI smoke runs. */
    bool fast = false;
    /** --jobs=N: batch-layer worker count (default: all hardware threads).
     * Results are bit-identical at any value; only wall-clock changes. */
    BatchOptions batch;
    /** --runs=N: overrides the bench's profiling run count (0 = use the
     * bench default, which usually depends on --fast). */
    int runs = 0;
    /** --out=PATH: overrides the bench's CSV artifact path. */
    std::string out;
    /** --seed=S: overrides the bench's root seed (0 = use the bench
     * default). Every derived seed (profiler, devices, campaigns) is an
     * offset of this root, so one flag re-seeds the whole experiment. */
    uint64_t seed = 0;
    /** --baseline=NAME: CPU governor for the comparison baseline (empty =
     * the stock interactive governor, the gated-snapshot configuration).
     * E.g. --baseline=lulzactive pits the controller against the community
     * governor in the Table III/IV comparisons. */
    std::string baseline;

    /** Profiling run count: the --runs override if given, else the bench
     * default for the current speed mode. */
    int ProfileRuns(int full_default = 3, int fast_default = 1) const
    {
        if (runs > 0) {
            return runs;
        }
        return fast ? fast_default : full_default;
    }

    /** CSV artifact path: the --out override if given, else @p default_name. */
    std::string OutputPath(const std::string& default_name) const
    {
        return out.empty() ? default_name : out;
    }

    /** Root seed: the --seed override if given, else @p fallback. */
    uint64_t SeedOr(uint64_t fallback) const
    {
        return seed != 0 ? seed : fallback;
    }
};

/** Parses --fast, --jobs=N, --runs=N, --seed=S and --out=PATH anywhere in
 * argv; ignores everything else. */
BenchArgs ParseBenchArgs(int argc, char** argv);

/**
 * Monotonic wall time in seconds, for perf sidecars and progress lines.
 * This is the one sanctioned wall-clock read in bench/: everything a
 * snapshot gate diffs must come from simulated time, and aeo-lint's
 * determinism rule bans raw std::chrono clocks outside this helper so a
 * wall-clock read can never silently leak into gated bytes.
 */
double MonotonicSeconds();

/** The --json=PATH override if present, else @p default_path. Benches that
 * emit a determinism-gated snapshot all accept this flag. */
std::string JsonPathArg(int argc, char** argv,
                        const std::string& default_path);

/** Writes @p json_text to @p path and prints a "Wrote" line. */
void WriteSnapshotFile(const std::string& path, const std::string& json_text);

/**
 * Writes the non-deterministic perf sidecar `<snapshot_path>.perf.json`:
 * wall seconds, simulated events executed (TotalExecutedEvents delta over
 * the bench), events/sec, and hardware threads. Kept out of the snapshot
 * itself so the byte-for-byte CI gate only ever sees deterministic bytes;
 * CI uploads the sidecars as artifacts for trend tracking.
 */
void WritePerfMeta(const std::string& snapshot_path, double wall_seconds,
                   uint64_t events_executed);

/** Prints a banner naming the experiment and the paper artifact. */
void PrintHeader(const std::string& experiment_id, const std::string& title);

/** Labels "1".."18" / "1".."13" for residency charts (paper numbering). */
std::vector<std::string> CpuLevelLabels();
std::vector<std::string> BwLevelLabels();

/** Renders a residency vector as an ASCII bar chart. */
std::string RenderResidency(const std::vector<double>& fractions,
                            const std::vector<std::string>& labels);

/** Prints two residency charts side by side contextually (default, ours). */
void PrintResidencyComparison(const std::string& app,
                              const aeo::RunResult& default_run,
                              const aeo::RunResult& controller_run, bool bandwidth);

}  // namespace aeo::bench

#endif  // AEO_BENCH_BENCH_COMMON_H_
