/**
 * @file
 * E12 — the §VII extension: "Our next steps are to include GPU frequencies
 * ... into the control system framework."
 *
 * A GPU-bound 3D game ("Racer3D": 60 fps frames whose render load tracks
 * game progress) is run three ways:
 *
 *  1. Android defaults (interactive + cpubw_hwmon + msm-adreno-tz);
 *  2. the paper's controller (CPU + bandwidth; GPU left to msm-adreno-tz);
 *  3. the extended controller with GPU frequency in the coordinated
 *     configuration tuple.
 *
 * The busy-threshold GPU governor over-provisions the clock exactly like
 * the CPU governors do, and the extended controller recovers that margin.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/offline_profiler.h"
#include "core/online_controller.h"
#include "platform/sim_platform.h"

namespace {

using namespace aeo;

/** A GPU-heavy 60 fps racing game. */
AppSpec
MakeRacer3DSpec()
{
    AppSpec spec;
    spec.name = "Racer3D";
    spec.loop = true;
    spec.jitter_rel = 0.08;

    AppPhase race;
    race.name = "race";
    race.kind = PhaseKind::kFrame;
    race.demand.ipc = 0.30;
    race.demand.parallelism = 2.0;
    race.demand.mem_bytes_per_instr = 0.10;
    race.duration = SimTime::FromSeconds(30);
    race.frame_work_gi = 0.005;          // ~0.3 GIPS of game logic
    race.frame_period = SimTime::Micros(16667);
    race.slack_demand.demand_gips = 0.004;
    race.gpu_units_per_gi = 1300.0;      // ~390 MHz-equivalents of render
    race.component_mw = 120.0;           // display pipeline
    spec.phases.push_back(race);
    return spec;
}

RunResult
RunDefault(uint64_t seed)
{
    DeviceConfig config;
    config.seed = seed;
    Device device(config);
    device.UseDefaultGovernors();
    device.LaunchApp(MakeRacer3DSpec());
    device.RunFor(SimTime::FromSeconds(120));
    return device.CollectResult("default");
}

RunResult
RunControlled(const ProfileTable& table, double target, uint64_t seed,
              const char* label)
{
    DeviceConfig config;
    config.seed = seed;
    Device device(config);
    device.LaunchApp(MakeRacer3DSpec());
    ControllerConfig controller_config;
    controller_config.target_gips = target;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, controller_config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(120));
    controller.Stop();
    return device.CollectResult(label);
}

}  // namespace

int
main()
{
    SetLogLevel(LogLevel::kWarn);
    bench::PrintHeader("E12 / §VII extension",
                       "Coordinated GPU-frequency control (Racer3D)");

    const RunResult base = RunDefault(91);

    OfflineProfiler profiler;
    ProfilerOptions paper_options;
    paper_options.cpu_levels = {0, 2, 4, 6};
    paper_options.runs = 3;
    paper_options.measure_duration = SimTime::FromSeconds(20);
    paper_options.seed = 92;
    ProfileTable paper_table =
        profiler.Profile(MakeRacer3DSpec(), paper_options).PruneEpsilonDominated(0.01);

    ProfilerOptions ext_options = paper_options;
    ext_options.gpu_levels = {1, 2, 3, 4};
    ProfileTable ext_table =
        profiler.Profile(MakeRacer3DSpec(), ext_options).PruneEpsilonDominated(0.01);

    const RunResult paper_run =
        RunControlled(paper_table, base.avg_gips, 93, "controller-cpu-bw");
    const RunResult ext_run =
        RunControlled(ext_table, base.avg_gips, 94, "controller-cpu-bw-gpu");

    TextTable table({"policy", "GIPS", "avg power (mW)", "energy savings"});
    table.AddRow({"default governors", StrFormat("%.3f", base.avg_gips),
                  StrFormat("%.0f", base.measured_avg_power_mw.value()), "--"});
    table.AddRow({"controller (CPU+BW, paper)", StrFormat("%.3f", paper_run.avg_gips),
                  StrFormat("%.0f", paper_run.measured_avg_power_mw.value()),
                  StrFormat("%.1f%%", paper_run.EnergySavingsPercent(base))});
    table.AddRow({"controller (CPU+BW+GPU, SVII)", StrFormat("%.3f", ext_run.avg_gips),
                  StrFormat("%.0f", ext_run.measured_avg_power_mw.value()),
                  StrFormat("%.1f%%", ext_run.EnergySavingsPercent(base))});
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Adding the GPU to the configuration tuple recovers the margin\n"
                "the busy-threshold msm-adreno-tz governor leaves on the table,\n"
                "with no change to the controller itself — only the profile\n"
                "grid grows, as the paper anticipates in SVII.\n");
    return 0;
}
