/**
 * @file
 * E8 — Table V: the CPU-only DVFS ablation (§V-D). The controller manages
 * only the CPU frequency; the memory bus stays with cpubw_hwmon, taking
 * decisions "in an independent and isolated manner". The paper reports that
 * coordinated control saves substantially more energy (≈53 % lower energy
 * consumption on average) because the default bandwidth governor holds a
 * higher-than-necessary bandwidth for most of the runtime.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"
#include "paper_data.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E8 / Table V", "CPU-only DVFS controller vs default");

    ExperimentHarness harness;

    // Per app, the CPU-only ablation then the coordinated comparison: two
    // batch jobs, interleaved in submission order.
    std::vector<ComparisonJob> jobs;
    for (const auto& row : paper::TableV()) {
        ExperimentOptions cpu_only;
        cpu_only.profile_runs = args.ProfileRuns();
        cpu_only.seed = 2017;
        cpu_only.cpu_only = true;
        jobs.push_back(ComparisonJob{row.app, cpu_only});

        ExperimentOptions coordinated = cpu_only;
        coordinated.cpu_only = false;
        jobs.push_back(ComparisonJob{row.app, coordinated});
    }
    const std::vector<ExperimentOutcome> outcomes =
        harness.RunComparisons(std::move(jobs), args.batch);

    TextTable table({"Application", "Perf (paper)", "Perf (ours)",
                     "Energy (paper)", "Energy (ours)", "Coordinated (ours)"});
    double coordinated_sum = 0.0;
    double cpu_only_sum = 0.0;
    size_t i = 0;
    for (const auto& row : paper::TableV()) {
        const ExperimentOutcome& ablation = outcomes[i++];
        const ExperimentOutcome& full = outcomes[i++];

        coordinated_sum += full.energy_savings_pct;
        cpu_only_sum += ablation.energy_savings_pct;

        table.AddRow({row.app, StrFormat("%+.1f%%", row.perf_delta_pct),
                      StrFormat("%+.1f%%", ablation.perf_delta_pct),
                      StrFormat("%.1f%%", row.energy_savings_pct),
                      StrFormat("%.1f%%", ablation.energy_savings_pct),
                      StrFormat("%.1f%%", full.energy_savings_pct)});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Average savings — coordinated: %.1f%%, CPU-only: %.1f%%.\n"
                "The paper reports CPU-only control consumes ~53%% more energy\n"
                "than the coordinated controller on average.\n",
                coordinated_sum / 6.0, cpu_only_sum / 6.0);
    return 0;
}
