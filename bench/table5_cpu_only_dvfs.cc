/**
 * @file
 * E8 — Table V: the CPU-only DVFS ablation (§V-D). The controller manages
 * only the CPU frequency; the memory bus stays with cpubw_hwmon, taking
 * decisions "in an independent and isolated manner". The paper reports that
 * coordinated control saves substantially more energy (≈53 % lower energy
 * consumption on average) because the default bandwidth governor holds a
 * higher-than-necessary bandwidth for most of the runtime.
 *
 * Emits BENCH_table5.json (override with --json=PATH): a deterministic,
 * jobs-invariant snapshot of the ablation vs coordinated outcomes,
 * %.6g-rounded, diffed byte-for-byte in CI against
 * bench/snapshots/BENCH_table5.json. Wall time and simulated-event
 * throughput go to the <snapshot>.perf.json sidecar.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"
#include "paper_data.h"
#include "sim/event_queue.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E8 / Table V", "CPU-only DVFS controller vs default");

    ExperimentHarness harness;

    // Per app, the CPU-only ablation then the coordinated comparison: two
    // batch jobs, interleaved in submission order.
    std::vector<ComparisonJob> jobs;
    for (const auto& row : paper::TableV()) {
        ExperimentOptions cpu_only;
        cpu_only.profile_runs = args.ProfileRuns();
        cpu_only.seed = 2017;
        cpu_only.cpu_only = true;
        jobs.push_back(ComparisonJob{row.app, cpu_only});

        ExperimentOptions coordinated = cpu_only;
        coordinated.cpu_only = false;
        jobs.push_back(ComparisonJob{row.app, coordinated});
    }
    const uint64_t events_before = TotalExecutedEvents();
    const double wall_start = bench::MonotonicSeconds();
    const std::vector<ExperimentOutcome> outcomes =
        harness.RunComparisons(std::move(jobs), args.batch);
    const double wall_seconds = bench::MonotonicSeconds() - wall_start;
    const uint64_t events_executed = TotalExecutedEvents() - events_before;

    TextTable table({"Application", "Perf (paper)", "Perf (ours)",
                     "Energy (paper)", "Energy (ours)", "Coordinated (ours)"});
    double coordinated_sum = 0.0;
    double cpu_only_sum = 0.0;
    size_t i = 0;
    for (const auto& row : paper::TableV()) {
        const ExperimentOutcome& ablation = outcomes[i++];
        const ExperimentOutcome& full = outcomes[i++];

        coordinated_sum += full.energy_savings_pct;
        cpu_only_sum += ablation.energy_savings_pct;

        table.AddRow({row.app, StrFormat("%+.1f%%", row.perf_delta_pct),
                      StrFormat("%+.1f%%", ablation.perf_delta_pct),
                      StrFormat("%.1f%%", row.energy_savings_pct),
                      StrFormat("%.1f%%", ablation.energy_savings_pct),
                      StrFormat("%.1f%%", full.energy_savings_pct)});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Average savings — coordinated: %.1f%%, CPU-only: %.1f%%.\n"
                "The paper reports CPU-only control consumes ~53%% more energy\n"
                "than the coordinated controller on average.\n\n",
                coordinated_sum / 6.0, cpu_only_sum / 6.0);

    JsonValue doc = JsonValue::MakeObject();
    doc.Set("schema", 1);
    doc.Set("bench", "table5_cpu_only_dvfs");
    doc.Set("root_seed", "2017");
    doc.Set("fast", args.fast);
    doc.Set("profile_runs", args.ProfileRuns());
    JsonValue rows = JsonValue::MakeArray();
    size_t j = 0;
    for (const auto& row : paper::TableV()) {
        const ExperimentOutcome& ablation = outcomes[j++];
        const ExperimentOutcome& full = outcomes[j++];
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("app", row.app);
        entry.Set("cpu_only_perf_delta_pct",
                  StrFormat("%.6g", ablation.perf_delta_pct));
        entry.Set("cpu_only_energy_savings_pct",
                  StrFormat("%.6g", ablation.energy_savings_pct));
        entry.Set("coordinated_energy_savings_pct",
                  StrFormat("%.6g", full.energy_savings_pct));
        entry.Set("cpu_only_energy_j",
                  StrFormat("%.6g", ablation.controller_run.energy_j));
        entry.Set("coordinated_energy_j",
                  StrFormat("%.6g", full.controller_run.energy_j));
        rows.Append(std::move(entry));
    }
    doc.Set("rows", std::move(rows));
    doc.Set("avg_coordinated_savings_pct",
            StrFormat("%.6g", coordinated_sum / 6.0));
    doc.Set("avg_cpu_only_savings_pct", StrFormat("%.6g", cpu_only_sum / 6.0));
    const std::string json_path =
        bench::JsonPathArg(argc, argv, "BENCH_table5.json");
    bench::WriteSnapshotFile(json_path, doc.Dump(2) + "\n");
    bench::WritePerfMeta(json_path, wall_seconds, events_executed);
    return 0;
}
