/**
 * @file
 * P2 — Event-core hot path: throughput and allocation behaviour of the slab
 * event queue (DESIGN.md §14) under the three shapes the simulator actually
 * runs:
 *
 *  - steady-state periodic dispatch (the 5 kHz power monitor, governor and
 *    thermal timers): repeating events re-arming their slab record in place;
 *  - one-shot churn (device boundary events): schedule → fire → reschedule
 *    through the free list;
 *  - schedule/cancel mix (deadline supervision): ids armed and cancelled
 *    without ever firing.
 *
 * This binary overrides global operator new/delete with a counting hook, so
 * allocations per dispatch are *measured*, not inferred: after warmup the
 * periodic and one-shot paths must both report 0.000 (the property test
 * under tests/sim asserts the same invariant; this bench reports it next to
 * the throughput numbers it buys).
 *
 * Emits BENCH_event_hotpath.json (events/sec, ns/dispatch,
 * allocations/dispatch per scenario). Timing fields vary run to run — this
 * artifact is a perf record, not a determinism-gated snapshot.
 */
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "sim/simulator.h"

namespace {

/** Heap operations observed by the counting hook below. */
std::atomic<uint64_t> g_alloc_count{0};

}  // namespace

// Counting allocator hook: every heap allocation in this binary passes
// through here. Lives in this TU only — the hook is per-binary, the library
// under test is unchanged.
void*
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace {


struct Scenario {
    std::string name;
    uint64_t dispatches = 0;
    double seconds = 0.0;
    uint64_t allocations = 0;

    double events_per_second() const
    {
        return seconds > 0.0 ? static_cast<double>(dispatches) / seconds : 0.0;
    }
    double ns_per_dispatch() const
    {
        return dispatches > 0
                   ? seconds * 1e9 / static_cast<double>(dispatches)
                   : 0.0;
    }
    double allocs_per_dispatch() const
    {
        return dispatches > 0 ? static_cast<double>(allocations) /
                                    static_cast<double>(dispatches)
                              : 0.0;
    }
};

/**
 * Steady-state periodic dispatch: @p series repeating events with co-prime
 * periods (so firings interleave rather than batch), run until ~@p total
 * dispatches. Warmup grows the slab and the heap first; the measured
 * region must not allocate.
 */
Scenario
RunPeriodic(uint64_t total, int series)
{
    aeo::Simulator sim;
    std::vector<uint64_t> fired(static_cast<size_t>(series), 0);
    // Co-prime-ish microsecond periods near 200 us — ~5 kHz, the monitor's
    // regime.
    for (int i = 0; i < series; ++i) {
        uint64_t* slot = &fired[static_cast<size_t>(i)];
        sim.ScheduleEvery(aeo::SimTime::Micros(191 + 2 * i),
                          [slot] { ++*slot; });
    }
    // Warmup: populate the slab, the heap vector, and the executed counters.
    sim.RunFor(aeo::SimTime::Millis(20));

    const uint64_t start_events = sim.executed_events();
    const uint64_t start_allocs = g_alloc_count.load(std::memory_order_relaxed);
    const double start = aeo::bench::MonotonicSeconds();
    while (sim.executed_events() - start_events < total) {
        sim.RunFor(aeo::SimTime::Millis(100));
    }
    const double seconds =
        aeo::bench::MonotonicSeconds() - start;
    const uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - start_allocs;

    Scenario s;
    s.name = "periodic_steady_state";
    s.dispatches = sim.executed_events() - start_events;
    s.seconds = seconds;
    s.allocations = allocs;
    return s;
}

/**
 * One-shot churn: @p chains self-rescheduling one-shot events — the device
 * boundary-event shape. Each firing re-schedules through Acquire/Release on
 * the free list; after warmup the slab stops growing and dispatch is
 * allocation-free.
 */
Scenario
RunOneShotChurn(uint64_t total, int chains)
{
    aeo::Simulator sim;
    struct Chain {
        aeo::Simulator* sim;
        aeo::SimTime period;
        void Fire()
        {
            sim->ScheduleAfter(period, [this] { Fire(); });
        }
    };
    std::vector<Chain> chain_objs;
    chain_objs.reserve(static_cast<size_t>(chains));
    for (int i = 0; i < chains; ++i) {
        chain_objs.push_back(Chain{&sim, aeo::SimTime::Micros(193 + 2 * i)});
    }
    for (Chain& c : chain_objs) {
        c.Fire();
    }
    sim.RunFor(aeo::SimTime::Millis(20));

    const uint64_t start_events = sim.executed_events();
    const uint64_t start_allocs = g_alloc_count.load(std::memory_order_relaxed);
    const double start = aeo::bench::MonotonicSeconds();
    while (sim.executed_events() - start_events < total) {
        sim.RunFor(aeo::SimTime::Millis(100));
    }
    const double seconds =
        aeo::bench::MonotonicSeconds() - start;
    const uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - start_allocs;

    Scenario s;
    s.name = "oneshot_churn";
    s.dispatches = sim.executed_events() - start_events;
    s.seconds = seconds;
    s.allocations = allocs;
    return s;
}

/**
 * Schedule/cancel mix: events armed and cancelled before firing (the
 * deadline-supervisor shape). Counts a schedule+cancel pair as one
 * dispatch-equivalent for the rate columns.
 */
Scenario
RunScheduleCancel(uint64_t total)
{
    aeo::Simulator sim;
    // Keep one repeating heartbeat so time can advance past cancelled ids.
    uint64_t beats = 0;
    sim.ScheduleEvery(aeo::SimTime::Millis(1), [&beats] { ++beats; });
    sim.RunFor(aeo::SimTime::Millis(5));

    const uint64_t start_allocs = g_alloc_count.load(std::memory_order_relaxed);
    const double start = aeo::bench::MonotonicSeconds();
    uint64_t pairs = 0;
    while (pairs < total) {
        const aeo::EventId id =
            sim.ScheduleAfter(aeo::SimTime::Millis(10), [] {});
        sim.Cancel(id);
        ++pairs;
        if ((pairs & 0xfff) == 0) {
            sim.RunFor(aeo::SimTime::Millis(1));
        }
    }
    const double seconds =
        aeo::bench::MonotonicSeconds() - start;
    const uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - start_allocs;

    Scenario s;
    s.name = "schedule_cancel";
    s.dispatches = pairs;
    s.seconds = seconds;
    s.allocations = allocs;
    return s;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("P2 / event hot path",
                       "Slab event core: dispatch rate and allocations");

    const uint64_t total = args.fast ? 2'000'000ULL : 10'000'000ULL;
    std::vector<Scenario> scenarios;
    scenarios.push_back(RunPeriodic(total, 8));
    scenarios.push_back(RunOneShotChurn(total, 8));
    scenarios.push_back(RunScheduleCancel(total / 2));

    TextTable table({"Scenario", "Dispatches", "Events/s", "ns/dispatch",
                     "Allocs/dispatch"});
    for (const Scenario& s : scenarios) {
        table.AddRow({s.name, StrFormat("%llu", (unsigned long long)s.dispatches),
                      StrFormat("%.3g", s.events_per_second()),
                      StrFormat("%.1f", s.ns_per_dispatch()),
                      StrFormat("%.3f", s.allocs_per_dispatch())});
    }
    std::printf("%s\n", table.ToString().c_str());

    bool hot_paths_allocation_free = true;
    for (const Scenario& s : scenarios) {
        if (s.name != "schedule_cancel" && s.allocations != 0) {
            hot_paths_allocation_free = false;
            std::fprintf(stderr,
                         "FAIL: %s performed %llu heap allocations in the "
                         "steady state\n",
                         s.name.c_str(), (unsigned long long)s.allocations);
        }
    }

    std::string json = "{\n  \"bench\": \"event_hotpath\",\n  \"scenarios\": [\n";
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const Scenario& s = scenarios[i];
        json += StrFormat(
            "    {\"name\": \"%s\", \"dispatches\": %llu, "
            "\"events_per_second\": %.0f, \"ns_per_dispatch\": %.2f, "
            "\"allocations\": %llu, \"allocs_per_dispatch\": %.6f}%s\n",
            s.name.c_str(), (unsigned long long)s.dispatches,
            s.events_per_second(), s.ns_per_dispatch(),
            (unsigned long long)s.allocations, s.allocs_per_dispatch(),
            i + 1 < scenarios.size() ? "," : "");
    }
    json += StrFormat("  ],\n  \"hot_paths_allocation_free\": %s\n}\n",
                      hot_paths_allocation_free ? "true" : "false");
    const std::string json_path = "BENCH_event_hotpath.json";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    AEO_ASSERT(f != nullptr, "cannot open %s", json_path.c_str());
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("Wrote %s\n", json_path.c_str());

    return hot_paths_allocation_free ? 0 : 1;
}
