/**
 * @file
 * E6 — Figure 5: histograms of memory-bandwidth residency, controller vs
 * default. The paper's shape: cpubw_hwmon's exponential back-off keeps the
 * bus provisioned higher than necessary for much of the runtime, while the
 * controller selects bandwidth level 1 for over 60 % of the time in all six
 * test cases.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "core/experiment.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E6 / Fig. 5",
                       "Memory-bandwidth residency: controller vs default");

    ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = args.ProfileRuns();
    options.seed = 2017;

    double controller_bw1_sum = 0.0;
    int apps = 0;
    for (const std::string& app : EvaluationAppNames()) {
        const ExperimentOutcome outcome = harness.RunComparison(app, options);
        bench::PrintResidencyComparison(app, outcome.default_run,
                                        outcome.controller_run,
                                        /*bandwidth=*/true);
        controller_bw1_sum += outcome.controller_run.bw_residency[0] * 100.0;
        ++apps;
        std::fflush(stdout);
    }
    std::printf("controller residency at bandwidth level 1, averaged over %d "
                "apps: %.1f%% (paper: over 60%% in all cases)\n",
                apps, controller_bw1_sum / apps);
    return 0;
}
