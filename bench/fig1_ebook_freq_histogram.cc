/**
 * @file
 * E1 — Figure 1: histogram of CPU frequencies chosen by the default
 * governor for the eBook reader with no user interaction (WiFi on, baseline
 * background). The paper's motivating observation: >10 % of time at the
 * highest frequency and ~15 % at frequency 10 even though nothing happens.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "core/experiment.h"
#include "paper_data.h"
#include "stats/comparison.h"

int
main()
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    bench::PrintHeader("E1 / Fig. 1",
                       "CPU frequency histogram: eBook reader, default governor");

    ExperimentHarness harness;
    const RunResult run = harness.RunDefault("eBook", BackgroundKind::kBaseline, 42);

    std::printf("%s\n\n", run.Summary().c_str());
    std::printf("%s\n", bench::RenderResidency(run.cpu_residency,
                                               bench::CpuLevelLabels())
                            .c_str());

    const double level10_pct = run.cpu_residency[9] * 100.0;
    const double top_pct = run.cpu_residency[17] * 100.0;
    double elevated_pct = 0.0;
    for (int level = 9; level < 18; ++level) {
        elevated_pct += run.cpu_residency[static_cast<size_t>(level)] * 100.0;
    }

    ComparisonReport report("Fig. 1 headline facts");
    report.Add("residency at level 10", paper::kFig1Level10ResidencyPct,
               level10_pct, "%");
    report.Add("residency at level 18 (>)", paper::kFig1TopFreqResidencyPct,
               top_pct, "%");
    std::printf("%s\n", report.ToString().c_str());
    std::printf("Elevated (level >= 10) residency: %.1f%% — \"running at a\n"
                "higher-than-necessary clock frequency results in energy "
                "wastage\".\n",
                elevated_pct);
    return 0;
}
