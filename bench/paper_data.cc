#include "paper_data.h"

namespace aeo::paper {

const std::vector<AppRow>&
TableIII()
{
    static const std::vector<AppRow> kRows = {
        {"VidCon", -0.4, 25.3},  {"MobileBench", 4.1, 15.3},
        {"AngryBirds", 0.6, 14.9}, {"WeChat", -0.4, 27.2},
        {"MXPlayer", 0.0, 4.2},  {"Spotify", 9.3, 31.6},
    };
    return kRows;
}

const std::vector<AppRow>&
TableIV_BL()
{
    static const std::vector<AppRow> kRows = {
        {"VidCon", 0.8, 25.3},  {"MobileBench", 4.0, 15.3},
        {"AngryBirds", 0.6, 14.9}, {"WeChat", -0.4, 27.2},
        {"MXPlayer", 0.0, 5.0}, {"Spotify", 9.3, 31.6},
    };
    return kRows;
}

const std::vector<AppRow>&
TableIV_NL()
{
    static const std::vector<AppRow> kRows = {
        {"VidCon", 0.2, 28.0},   {"MobileBench", -3.5, -4.9},
        {"AngryBirds", 1.0, 12.8}, {"WeChat", 2.0, 19.4},
        {"MXPlayer", 0.0, 2.9},  {"Spotify", -1.7, 7.2},
    };
    return kRows;
}

const std::vector<AppRow>&
TableIV_HL()
{
    static const std::vector<AppRow> kRows = {
        {"VidCon", -8.0, 11.4},  {"MobileBench", -2.0, 4.6},
        {"AngryBirds", -2.0, 10.0}, {"WeChat", 3.6, 27.0},
        {"MXPlayer", 0.0, 5.0},  {"Spotify", -1.3, 6.0},
    };
    return kRows;
}

const std::vector<AppRow>&
TableV()
{
    static const std::vector<AppRow> kRows = {
        {"VidCon", 2.8, 13.1},   {"MobileBench", -2.9, 7.6},
        {"AngryBirds", -2.6, 9.6}, {"WeChat", 4.7, 22.3},
        {"MXPlayer", 0.0, 0.4},  {"Spotify", 3.3, 33.3},
    };
    return kRows;
}

const std::vector<ProfileRow>&
TableI()
{
    static const std::vector<ProfileRow> kRows = {
        {1, 1, 1.0, Milliwatts(1623.57)},
        {1, 3, 1.0038, Milliwatts(1682.83)},
        {1, 5, 1.0077, Milliwatts(1742.09)},
        {5, 1, 1.837, Milliwatts(2219.22)},
    };
    return kRows;
}

}  // namespace aeo::paper
