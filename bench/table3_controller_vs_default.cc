/**
 * @file
 * E4 — Table III: performance difference and energy savings obtained by the
 * coordinated controller vs the default governors on all six applications
 * under the baseline background load.
 *
 * Emits BENCH_table3.json (override with --json=PATH): a deterministic,
 * jobs-invariant snapshot of the per-app outcomes, %.6g-rounded, diffed
 * byte-for-byte in CI against bench/snapshots/BENCH_table3.json. Wall time
 * and simulated-event throughput go to the non-deterministic sidecar
 * <snapshot>.perf.json so the gated bytes never depend on machine speed.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"
#include "paper_data.h"
#include "sim/event_queue.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E4 / Table III",
                       "Controller vs default governors (baseline load)");

    ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = args.ProfileRuns();
    options.seed = 2017;
    // Off by default: the gated snapshot compares against interactive.
    options.baseline_cpu_governor = args.baseline;

    // One batch job per application; outcomes land in TableIII row order.
    std::vector<ComparisonJob> jobs;
    for (const auto& row : paper::TableIII()) {
        jobs.push_back(ComparisonJob{row.app, options});
    }
    const uint64_t events_before = TotalExecutedEvents();
    const double wall_start = bench::MonotonicSeconds();
    const std::vector<ExperimentOutcome> outcomes =
        harness.RunComparisons(std::move(jobs), args.batch);
    const double wall_seconds = bench::MonotonicSeconds() - wall_start;
    const uint64_t events_executed = TotalExecutedEvents() - events_before;

    TextTable table({"Application", "Perf (paper)", "Perf (ours)",
                     "Energy (paper)", "Energy (ours)"});
    size_t i = 0;
    for (const auto& row : paper::TableIII()) {
        const ExperimentOutcome& outcome = outcomes[i++];
        table.AddRow({row.app, StrFormat("%+.1f%%", row.perf_delta_pct),
                      StrFormat("%+.1f%%", outcome.perf_delta_pct),
                      StrFormat("%.1f%%", row.energy_savings_pct),
                      StrFormat("%.1f%%", outcome.energy_savings_pct)});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Positive performance = controller faster than default;\n"
                "positive energy = controller saves energy (paper: 4-31%% savings\n"
                "with worst-case performance loss < 1%%).\n\n");

    JsonValue doc = JsonValue::MakeObject();
    doc.Set("schema", 1);
    doc.Set("bench", "table3_controller_vs_default");
    doc.Set("root_seed", "2017");
    doc.Set("fast", args.fast);
    doc.Set("profile_runs", options.profile_runs);
    JsonValue rows = JsonValue::MakeArray();
    size_t j = 0;
    for (const auto& row : paper::TableIII()) {
        const ExperimentOutcome& outcome = outcomes[j++];
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("app", row.app);
        entry.Set("perf_delta_pct", StrFormat("%.6g", outcome.perf_delta_pct));
        entry.Set("energy_savings_pct",
                  StrFormat("%.6g", outcome.energy_savings_pct));
        entry.Set("default_energy_j",
                  StrFormat("%.6g", outcome.default_run.energy_j));
        entry.Set("controller_energy_j",
                  StrFormat("%.6g", outcome.controller_run.energy_j));
        entry.Set("default_avg_gips",
                  StrFormat("%.6g", outcome.default_run.avg_gips));
        entry.Set("controller_avg_gips",
                  StrFormat("%.6g", outcome.controller_run.avg_gips));
        rows.Append(std::move(entry));
    }
    doc.Set("rows", std::move(rows));
    const std::string json_path =
        bench::JsonPathArg(argc, argv, "BENCH_table3.json");
    bench::WriteSnapshotFile(json_path, doc.Dump(2) + "\n");
    bench::WritePerfMeta(json_path, wall_seconds, events_executed);
    return 0;
}
