/**
 * @file
 * E4 — Table III: performance difference and energy savings obtained by the
 * coordinated controller vs the default governors on all six applications
 * under the baseline background load.
 */
#include <cstdio>
#include <cstring>

#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"
#include "paper_data.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
    bench::PrintHeader("E4 / Table III",
                       "Controller vs default governors (baseline load)");

    ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = fast ? 1 : 3;
    options.seed = 2017;

    TextTable table({"Application", "Perf (paper)", "Perf (ours)",
                     "Energy (paper)", "Energy (ours)"});
    for (const auto& row : paper::TableIII()) {
        const ExperimentOutcome outcome = harness.RunComparison(row.app, options);
        table.AddRow({row.app, StrFormat("%+.1f%%", row.perf_delta_pct),
                      StrFormat("%+.1f%%", outcome.perf_delta_pct),
                      StrFormat("%.1f%%", row.energy_savings_pct),
                      StrFormat("%.1f%%", outcome.energy_savings_pct)});
        std::fflush(stdout);
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Positive performance = controller faster than default;\n"
                "positive energy = controller saves energy (paper: 4-31%% savings\n"
                "with worst-case performance loss < 1%%).\n");
    return 0;
}
