/**
 * @file
 * E4 — Table III: performance difference and energy savings obtained by the
 * coordinated controller vs the default governors on all six applications
 * under the baseline background load.
 */
#include <cstdio>

#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"
#include "paper_data.h"

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E4 / Table III",
                       "Controller vs default governors (baseline load)");

    ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = args.ProfileRuns();
    options.seed = 2017;

    // One batch job per application; outcomes land in TableIII row order.
    std::vector<ComparisonJob> jobs;
    for (const auto& row : paper::TableIII()) {
        jobs.push_back(ComparisonJob{row.app, options});
    }
    const std::vector<ExperimentOutcome> outcomes =
        harness.RunComparisons(std::move(jobs), args.batch);

    TextTable table({"Application", "Perf (paper)", "Perf (ours)",
                     "Energy (paper)", "Energy (ours)"});
    size_t i = 0;
    for (const auto& row : paper::TableIII()) {
        const ExperimentOutcome& outcome = outcomes[i++];
        table.AddRow({row.app, StrFormat("%+.1f%%", row.perf_delta_pct),
                      StrFormat("%+.1f%%", outcome.perf_delta_pct),
                      StrFormat("%.1f%%", row.energy_savings_pct),
                      StrFormat("%.1f%%", outcome.energy_savings_pct)});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Positive performance = controller faster than default;\n"
                "positive energy = controller saves energy (paper: 4-31%% savings\n"
                "with worst-case performance loss < 1%%).\n");
    return 0;
}
