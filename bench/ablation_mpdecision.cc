/**
 * @file
 * E14 — §IV-A methodology check: why the paper disables mpdecision (CPU
 * hotplug) and the touch-event frequency boost during measurements.
 *
 * Spotify is profiled at a fixed configuration with the modules off
 * (the paper's setup) and with each enabled; hotplug changes the power
 * baseline and the available capacity mid-measurement, and the touch boost
 * overrides the pinned frequency floor — both corrupt the (speedup, power)
 * rows the controller depends on.
 */
#include <cstdio>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "device/device.h"

namespace {

using namespace aeo;

struct Probe {
    double gips;
    Milliwatts power_mw;
    uint64_t hotplugs;
};

Probe
Measure(bool mpdecision, bool touch_boost, uint64_t seed)
{
    DeviceConfig config;
    config.seed = seed;
    Device device(config);
    device.PinConfiguration(2, 0);  // a Table-I style profiling point
    if (mpdecision) {
        device.EnableMpdecision();
    }
    if (touch_boost) {
        device.EnableInputBoost();
    }
    device.LaunchApp(MakeAppSpecByName("Spotify"));
    if (touch_boost) {
        // The user interacts with the screen roughly every 1.5 s.
        for (double t = 0.5; t < 30.0; t += 1.5) {
            device.sim().ScheduleAt(SimTime::FromSecondsF(t),
                                    [&device] { device.NotifyTouch(); });
        }
    }
    device.RunFor(SimTime::FromSeconds(30));
    const RunResult result = device.CollectResult("probe");
    uint64_t hotplugs = 0;
    if (mpdecision) {
        hotplugs = result.cpu_transitions;  // includes hotplug-driven resyncs
    }
    return Probe{result.avg_gips, result.measured_avg_power_mw, hotplugs};
}

}  // namespace

int
main()
{
    SetLogLevel(LogLevel::kWarn);
    bench::PrintHeader("E14 / §IV-A methodology",
                       "Why mpdecision and touch boost are disabled while profiling");

    // Spotify's bursty decode leaves long idle stretches: exactly where
    // hotplug distorts the power baseline of a pinned-configuration run.
    const Probe clean = Measure(false, false, 7);
    const Probe hotplug = Measure(true, false, 7);
    const Probe boosted = Measure(false, true, 7);

    TextTable table({"configuration", "GIPS", "avg power (mW)",
                     "GIPS error", "power error"});
    const auto row = [&](const char* name, const Probe& probe) {
        table.AddRow({name, StrFormat("%.4f", probe.gips),
                      StrFormat("%.0f", probe.power_mw.value()),
                      StrFormat("%+.1f%%", (probe.gips / clean.gips - 1.0) * 100.0),
                      StrFormat("%+.1f%%",
                                (probe.power_mw.value() / clean.power_mw.value() - 1.0) * 100.0)});
    };
    row("paper setup (both disabled)", clean);
    row("mpdecision enabled", hotplug);
    row("touch boost enabled", boosted);
    std::printf("%s\n", table.ToString().c_str());
    std::printf("A profiling row is supposed to measure one fixed configuration;\n"
                "hotplug changes capacity/power mid-run and the touch boost\n"
                "overrides the pinned frequency — the paper disables both\n"
                "(Section IV-A) and so does this repository's profiler.\n");
    return 0;
}
