/**
 * @file
 * E10 — §III-A ablation: sparse profiling (every other CPU level × the two
 * extreme bandwidths, linear interpolation in between — at most 9×2 = 18
 * measured configurations) versus the exhaustive 18×13 grid.
 *
 * The paper claims the controller is robust to the quantization and
 * modelling error the sparse table introduces. This harness quantifies it:
 * interpolation error of the sparse table against dense measurements, and
 * end-to-end controller results with both tables.
 */
#include <cmath>
#include <cstdio>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"

namespace {

using namespace aeo;

/** Max/mean relative error of sparse-interpolated rows vs dense rows. */
void
CompareTables(const ProfileTable& sparse, const ProfileTable& dense,
              double* max_power_err, double* mean_power_err,
              double* max_speedup_err)
{
    double power_err_sum = 0.0;
    int compared = 0;
    *max_power_err = 0.0;
    *max_speedup_err = 0.0;
    for (const ProfileEntry& s : sparse.entries()) {
        for (const ProfileEntry& d : dense.entries()) {
            if (s.config == d.config) {
                const double perr = std::fabs(s.power_mw.value() - d.power_mw.value()) / d.power_mw.value();
                const double serr = std::fabs(s.speedup - d.speedup) / d.speedup;
                *max_power_err = std::max(*max_power_err, perr);
                *max_speedup_err = std::max(*max_speedup_err, serr);
                power_err_sum += perr;
                ++compared;
            }
        }
    }
    *mean_power_err = compared > 0 ? power_err_sum / compared : 0.0;
}

}  // namespace

int
main(int argc, char** argv)
{
    SetLogLevel(LogLevel::kWarn);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    bench::PrintHeader("E10 / §III-A ablation",
                       "Sparse (9x2 + interpolation) vs dense (full grid) profiling");

    const ExperimentHarness harness;
    TextTable table({"App", "Max power err", "Mean power err", "Max speedup err",
                     "Energy (sparse)", "Energy (dense)"});

    for (const std::string& app : {std::string("AngryBirds"), std::string("Spotify")}) {
        ExperimentOptions sparse_options;
        sparse_options.profile_runs = args.ProfileRuns();
        sparse_options.seed = 2017;
        sparse_options.sparse_profiling = true;
        sparse_options.prune_epsilon = 0.0;  // compare raw tables
        // The dense 18×13 grid dominates this bench; fan its (config, run)
        // jobs across the batch layer (the tables are bit-identical).
        sparse_options.batch = args.batch;

        ExperimentOptions dense_options = sparse_options;
        dense_options.sparse_profiling = false;

        const ProfileTable sparse = harness.ProfileApp(app, sparse_options);
        const ProfileTable dense = harness.ProfileApp(app, dense_options);

        double max_perr = 0.0;
        double mean_perr = 0.0;
        double max_serr = 0.0;
        CompareTables(sparse, dense, &max_perr, &mean_perr, &max_serr);

        // End-to-end: controller outcomes with either table (pruned as in
        // the real pipeline).
        ExperimentOptions run_sparse = sparse_options;
        run_sparse.prune_epsilon = 0.01;
        ExperimentOptions run_dense = dense_options;
        run_dense.prune_epsilon = 0.01;
        const ExperimentOutcome sparse_outcome = harness.RunComparison(app, run_sparse);
        const ExperimentOutcome dense_outcome = harness.RunComparison(app, run_dense);

        table.AddRow({app, StrFormat("%.2f%%", max_perr * 100.0),
                      StrFormat("%.2f%%", mean_perr * 100.0),
                      StrFormat("%.2f%%", max_serr * 100.0),
                      StrFormat("%.1f%%", sparse_outcome.energy_savings_pct),
                      StrFormat("%.1f%%", dense_outcome.energy_savings_pct)});
        std::fflush(stdout);
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Sparse profiling measures <=18 of 234 configurations (13x less\n"
                "profiling time); the feedback controller absorbs the residual\n"
                "interpolation error, as the paper claims.\n");
    return 0;
}
