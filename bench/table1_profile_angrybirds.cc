/**
 * @file
 * E2 — Table I: the offline profile table for AngryBirds. Prints the
 * profiled (speedup, power) rows and compares the paper's four published
 * anchor rows against the reproduction.
 */
#include <cstdio>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "common/logging.h"
#include "core/offline_profiler.h"
#include "core/scenarios.h"
#include "paper_data.h"
#include "stats/comparison.h"

int
main()
{
    using namespace aeo;
    SetLogLevel(LogLevel::kWarn);
    bench::PrintHeader("E2 / Table I", "AngryBirds offline profile");

    const AppScenario scenario = GetAppScenario("AngryBirds");
    OfflineProfiler profiler;
    ProfilerOptions options;
    options.cpu_levels = scenario.profile_cpu_levels;
    options.measure_duration = scenario.profile_duration;
    options.runs = 3;
    options.seed = 20170201;
    const ProfileTable table =
        profiler.Profile(MakeAppSpecByName("AngryBirds"), options);
    std::printf("%s\n", table.ToString().c_str());

    ComparisonReport speedups("Table I anchors — speedup");
    ComparisonReport powers("Table I anchors — power (mW)");
    for (const auto& row : paper::TableI()) {
        const SystemConfig config{row.cpu_level_1based - 1, row.bw_level_1based - 1};
        for (const ProfileEntry& entry : table.entries()) {
            if (entry.config == config) {
                speedups.Add(config.ToString(), row.speedup, entry.speedup, "x");
                powers.Add(config.ToString(), row.power_mw.value(), entry.power_mw.value(), "mW");
            }
        }
    }
    std::printf("%s\n%s\n", speedups.ToString().c_str(), powers.ToString().c_str());
    std::printf("Base speed: paper 0.129 GIPS, measured %.4f GIPS\n",
                table.base_speed_gips());
    return 0;
}
