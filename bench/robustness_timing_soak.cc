/**
 * @file
 * R4 — Timing soak: the deadline-aware control loop under a grid of
 * tick-timing adversity (no paper counterpart; see DESIGN.md §13).
 *
 * Sweeps jitter intensity (tick-jitter storms, handler overruns, clock
 * skew) against suspend intensity (suspend/resume windows) and runs seeded
 * chaos campaigns restricted to the timing fault classes in every cell.
 * The invariant-monitor catalogue rides along, so a stale actuation or an
 * unbounded deadline-miss run in any cell fails the bench (non-zero exit).
 *
 * Reports per-cell deadline accounting — jitter/missed/suspend-gap ticks,
 * stale-guard quarantines, fallbacks — and emits robustness_timing_soak.csv
 * plus BENCH_timing_soak.json, the machine-readable snapshot CI regenerates
 * at --jobs=1 and --jobs=4 and diffs byte-for-byte against the committed
 * copy (results are bit-identical at any worker count).
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "chaos/campaign.h"
#include "chaos/scenario_generator.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/batch_runner.h"
#include "core/offline_profiler.h"
#include "core/scenarios.h"

namespace aeo {
namespace {

constexpr const char kApp[] = "AngryBirds";
constexpr uint64_t kDefaultSeed = 2017;
/** Between AngryBirds' base and saturation speed (as the thermal soak). */
constexpr double kTargetGips = 0.22;

/** One grid cell: relative intensity of each timing-adversity axis. */
struct Cell {
    double jitter = 0.0;   // tick jitter storms, overruns, clock skew
    double suspend = 0.0;  // suspend/resume windows
};

/** A timing-classes-only campaign spec for @p cell. */
chaos::CampaignSpec
CellSpec(const Cell& cell, bool fast)
{
    chaos::CampaignSpec spec;
    spec.duration_s = fast ? 40.0 : 120.0;
    spec.bursts_per_minute = 4.0;
    spec.base_intensity = 0.5;
    spec.intensity_ramp = 0.2;
    spec.class_weights =
        std::vector<double>(chaos::kFaultClassCount, 0.0);
    auto weight = [&spec](chaos::FaultClass cls, double value) {
        spec.class_weights[static_cast<size_t>(cls)] = value;
    };
    weight(chaos::FaultClass::kTickJitterStorm, cell.jitter);
    weight(chaos::FaultClass::kTickOverrun, cell.jitter);
    weight(chaos::FaultClass::kClockSkew, 0.5 * cell.jitter);
    weight(chaos::FaultClass::kSuspendResume, cell.suspend);
    return spec;
}

/** Scenario seed for run @p run of cell @p cell under @p root (stable). */
uint64_t
CellSeed(uint64_t root, size_t cell, int run)
{
    return root + 104729ull * (16ull * cell +
                               static_cast<uint64_t>(run) + 1ull);
}

/**
 * The scenario a cell run injects. The (0, 0) baseline cell has every
 * class weight at zero, which the generator's weighted draw cannot
 * represent — the baseline is the *empty* scenario, i.e. the clean control
 * loop on the same seeded device.
 */
chaos::ChaosScenario
CellScenario(const Cell& cell, const chaos::CampaignSpec& spec,
             uint64_t scenario_seed)
{
    if (cell.jitter <= 0.0 && cell.suspend <= 0.0) {
        chaos::ChaosScenario empty;
        empty.seed = scenario_seed;
        return empty;
    }
    return chaos::GenerateScenario(spec, scenario_seed);
}

/** Structural outcome of every run, for the byte-diffed CI snapshot. */
JsonValue
SnapshotJson(const bench::BenchArgs& args, uint64_t seed, bool fast,
             const std::vector<Cell>& cells, int runs_per_cell,
             const std::vector<chaos::CampaignReport>& reports)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("schema", 1);
    doc.Set("bench", "robustness_timing_soak");
    doc.Set("app", kApp);
    doc.Set("root_seed", chaos::SeedToJson(seed));
    doc.Set("fast", fast);
    doc.Set("profile_runs", args.ProfileRuns());
    doc.Set("runs_per_cell", runs_per_cell);
    JsonValue cell_array = JsonValue::MakeArray();
    for (size_t c = 0; c < cells.size(); ++c) {
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("jitter_intensity", StrFormat("%.2f", cells[c].jitter));
        entry.Set("suspend_intensity", StrFormat("%.2f", cells[c].suspend));
        JsonValue runs = JsonValue::MakeArray();
        for (int r = 0; r < runs_per_cell; ++r) {
            const chaos::CampaignReport& report =
                reports[c * static_cast<size_t>(runs_per_cell) +
                        static_cast<size_t>(r)];
            JsonValue run = JsonValue::MakeObject();
            run.Set("seed", chaos::SeedToJson(report.seed));
            run.Set("cycles", report.cycles);
            run.Set("jitter_ticks", report.jitter_ticks);
            run.Set("missed_ticks", report.missed_ticks);
            run.Set("suspend_gap_ticks", report.suspend_gap_ticks);
            run.Set("stale_guard_cycles", report.stale_guard_cycles);
            run.Set("degraded_cycles", report.degraded_cycles);
            run.Set("fallback", report.fallback);
            run.Set("reengage_count", report.reengage_count);
            run.Set("total_violations", report.total_violations);
            run.Set("first_violation_cycle", report.first_violation_cycle);
            run.Set("first_violation_monitor",
                    report.first_violation_monitor);
            run.Set("energy_j", StrFormat("%.6g", report.energy_j));
            run.Set("avg_gips", StrFormat("%.6g", report.avg_gips));
            runs.Append(std::move(run));
        }
        entry.Set("runs", std::move(runs));
        cell_array.Append(std::move(entry));
    }
    doc.Set("cells", std::move(cell_array));
    return doc;
}

}  // namespace
}  // namespace aeo

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kQuiet);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    const bool fast = args.fast;
    const uint64_t seed = args.SeedOr(kDefaultSeed);

    std::string json_path = "BENCH_timing_soak.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        }
    }

    bench::PrintHeader("R4 / timing soak",
                       "Deadline-aware control under jitter x suspend "
                       "adversity grids");

    // Clean profile, as the §V procedure would obtain it (timing faults
    // perturb the controlled run, never the offline data).
    const AppScenario scenario = GetAppScenario(kApp);
    ProfilerOptions profiler_options;
    profiler_options.runs = args.ProfileRuns();
    profiler_options.cpu_levels = scenario.profile_cpu_levels;
    profiler_options.measure_duration = scenario.profile_duration;
    profiler_options.seed = seed + 1000;
    profiler_options.batch = args.batch;
    const ProfileTable table =
        OfflineProfiler().Profile(MakeAppSpecByName(kApp), profiler_options);

    const std::vector<Cell> cells =
        fast ? std::vector<Cell>{{0.0, 0.0}, {0.8, 0.0}, {0.0, 1.0},
                                 {0.8, 1.0}}
             : std::vector<Cell>{{0.0, 0.0}, {0.4, 0.0}, {0.8, 0.0},
                                 {0.0, 0.5}, {0.0, 1.0}, {0.4, 0.5},
                                 {0.8, 0.5}, {0.4, 1.0}, {0.8, 1.0}};
    const int runs_per_cell = fast ? 2 : 3;

    // Every cell run is seeded and self-contained: fan the whole grid out.
    std::vector<std::function<chaos::CampaignReport()>> tasks;
    std::vector<chaos::CampaignOptions> cell_options(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
        chaos::CampaignOptions& options = cell_options[c];
        options.app = kApp;
        options.table = &table;
        options.target_gips = kTargetGips;
        options.spec = CellSpec(cells[c], fast);
        for (int r = 0; r < runs_per_cell; ++r) {
            const uint64_t scenario_seed = CellSeed(seed, c, r);
            const Cell cell = cells[c];
            tasks.push_back([&options, cell, scenario_seed] {
                return chaos::RunCampaign(
                    options,
                    CellScenario(cell, options.spec, scenario_seed));
            });
        }
    }
    const std::vector<chaos::CampaignReport> reports =
        BatchRunner(args.batch).RunOrdered(std::move(tasks));

    TextTable text({"Jitter", "Suspend", "Cycles", "Jit/Miss/Gap ticks",
                    "Stale-guard", "Degraded", "Fallback", "Violations"});
    CsvWriter csv({"jitter_intensity", "suspend_intensity", "run", "seed",
                   "cycles", "jitter_ticks", "missed_ticks",
                   "suspend_gap_ticks", "stale_guard_cycles",
                   "degraded_cycles", "fallback", "reengage_count",
                   "total_violations", "first_violation_monitor",
                   "first_violation_cycle", "energy_j", "avg_gips"});
    uint64_t total_violations = 0;
    for (size_t c = 0; c < cells.size(); ++c) {
        uint64_t cycles = 0, jit = 0, miss = 0, gap = 0, stale = 0, deg = 0;
        uint64_t violations = 0;
        int fallbacks = 0;
        for (int r = 0; r < runs_per_cell; ++r) {
            const chaos::CampaignReport& report =
                reports[c * static_cast<size_t>(runs_per_cell) +
                        static_cast<size_t>(r)];
            cycles += report.cycles;
            jit += report.jitter_ticks;
            miss += report.missed_ticks;
            gap += report.suspend_gap_ticks;
            stale += report.stale_guard_cycles;
            deg += report.degraded_cycles;
            violations += report.total_violations;
            fallbacks += report.fallback ? 1 : 0;
            csv.AddRow(
                {StrFormat("%.2f", cells[c].jitter),
                 StrFormat("%.2f", cells[c].suspend), StrFormat("%d", r),
                 StrFormat("%llu",
                           static_cast<unsigned long long>(report.seed)),
                 StrFormat("%llu",
                           static_cast<unsigned long long>(report.cycles)),
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       report.jitter_ticks)),
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       report.missed_ticks)),
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       report.suspend_gap_ticks)),
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       report.stale_guard_cycles)),
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       report.degraded_cycles)),
                 report.fallback ? "1" : "0",
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       report.reengage_count)),
                 StrFormat("%llu", static_cast<unsigned long long>(
                                       report.total_violations)),
                 report.first_violation_monitor,
                 StrFormat("%lld", static_cast<long long>(
                                       report.first_violation_cycle)),
                 StrFormat("%.6g", report.energy_j),
                 StrFormat("%.6g", report.avg_gips)});
        }
        total_violations += violations;
        text.AddRow(
            {StrFormat("%.2f", cells[c].jitter),
             StrFormat("%.2f", cells[c].suspend),
             StrFormat("%llu", static_cast<unsigned long long>(cycles)),
             StrFormat("%llu/%llu/%llu",
                       static_cast<unsigned long long>(jit),
                       static_cast<unsigned long long>(miss),
                       static_cast<unsigned long long>(gap)),
             StrFormat("%llu", static_cast<unsigned long long>(stale)),
             StrFormat("%llu", static_cast<unsigned long long>(deg)),
             fallbacks > 0 ? StrFormat("%d", fallbacks) : "no",
             StrFormat("%llu", static_cast<unsigned long long>(violations))});
    }
    std::printf("%s\n", text.ToString().c_str());

    const std::string csv_path =
        args.OutputPath("robustness_timing_soak.csv");
    csv.WriteFile(csv_path);
    std::printf("Wrote %s\n", csv_path.c_str());

    std::ofstream snapshot(json_path);
    snapshot << SnapshotJson(args, seed, fast, cells, runs_per_cell, reports)
                    .Dump(2)
             << "\n";
    snapshot.close();
    std::printf("Wrote %s\n\n", json_path.c_str());

    if (total_violations > 0) {
        std::printf("%llu invariant violation(s) across the grid — FAIL.\n",
                    static_cast<unsigned long long>(total_violations));
        return 1;
    }
    std::printf("All %zu cells clean: every invariant held under timing "
                "adversity.\n",
                cells.size());
    return 0;
}
