/**
 * @file
 * R3 — Chaos campaigns: seeded compound-fault scenarios against the hardened
 * controller, with runtime invariant monitors and automatic failure
 * minimization (no paper counterpart; see DESIGN.md §12).
 *
 * Fans N seeded campaigns over the batch layer (`--jobs=N` changes only
 * wall-clock, never a report bit), prints a violations-per-campaign table,
 * and emits robustness_chaos_campaign.csv plus BENCH_chaos_campaign.json —
 * the machine-readable snapshot CI diffs against the committed copy.
 *
 * When a campaign violates an invariant, the first failing scenario is
 * delta-debugged to a minimal reproducing fault list and written as a
 * replayable crash bundle (chaos_crash_bundle.json). Replay one with:
 *
 *     robustness_chaos_campaign --replay=chaos_crash_bundle.json
 *
 * which re-runs the bundle and checks the recorded first-violation cycle
 * reproduces exactly. Exit status is non-zero when any campaign violates
 * (campaign mode) or the replay diverges (replay mode).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "apps/app_registry.h"
#include "bench_common.h"
#include "chaos/campaign.h"
#include "chaos/crash_bundle.h"
#include "chaos/scenario_generator.h"
#include "chaos/scenario_shrinker.h"
#include "common/csv.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/batch_runner.h"
#include "core/offline_profiler.h"
#include "core/scenarios.h"
#include "device/device.h"

namespace aeo {
namespace {

constexpr const char kApp[] = "AngryBirds";
constexpr uint64_t kDefaultSeed = 2017;

/** Campaign shape for this bench (short in --fast for the CI smoke run). */
chaos::CampaignSpec
BenchSpec(bool fast)
{
    chaos::CampaignSpec spec;
    spec.duration_s = fast ? 40.0 : 120.0;
    spec.bursts_per_minute = 3.0;
    spec.phase_anchor_period_s = 10.0;
    return spec;
}

/** Scenario seed for campaign @p index under root @p seed (stable). */
uint64_t
CampaignSeed(uint64_t seed, int index)
{
    return seed + 1000003ull * static_cast<uint64_t>(index + 1);
}

/**
 * The snapshot holds the structural outcome of every campaign — counters
 * and verdicts, which are exact integer results of the seeded simulation —
 * plus %.6g-rounded energy/performance. CI regenerates it with the same
 * flags and diffs byte-for-byte against the committed copy.
 */
JsonValue
SnapshotJson(const bench::BenchArgs& args, uint64_t seed, bool fast,
             const std::vector<chaos::CampaignReport>& reports)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("schema", 1);
    doc.Set("bench", "robustness_chaos_campaign");
    doc.Set("app", kApp);
    doc.Set("root_seed", chaos::SeedToJson(seed));
    doc.Set("fast", fast);
    doc.Set("profile_runs", args.ProfileRuns());
    JsonValue campaigns = JsonValue::MakeArray();
    for (const chaos::CampaignReport& report : reports) {
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("seed", chaos::SeedToJson(report.seed));
        entry.Set("cycles", report.cycles);
        entry.Set("fault_events", report.fault_events);
        entry.Set("degraded_cycles", report.degraded_cycles);
        entry.Set("safe_mode_cycles", report.safe_mode_cycles);
        entry.Set("reengage_count", report.reengage_count);
        entry.Set("fallback", report.fallback);
        entry.Set("total_violations", report.total_violations);
        entry.Set("first_violation_cycle", report.first_violation_cycle);
        entry.Set("first_violation_monitor",
                  report.first_violation_monitor);
        entry.Set("energy_j", StrFormat("%.6g", report.energy_j));
        entry.Set("avg_gips", StrFormat("%.6g", report.avg_gips));
        campaigns.Append(std::move(entry));
    }
    doc.Set("campaigns", std::move(campaigns));
    return doc;
}

/** Rebuilds the clean profile table a campaign or replay regulates with. */
ProfileTable
BuildTable(const std::string& app, int runs, uint64_t profile_seed,
           const BatchOptions& batch)
{
    const AppScenario scenario = GetAppScenario(app);
    ProfilerOptions profiler_options;
    profiler_options.runs = runs;
    profiler_options.cpu_levels = scenario.profile_cpu_levels;
    profiler_options.measure_duration = scenario.profile_duration;
    profiler_options.seed = profile_seed;
    profiler_options.batch = batch;
    return OfflineProfiler().Profile(MakeAppSpecByName(app),
                                     profiler_options);
}

int
RunReplay(const std::string& path, const bench::BenchArgs& args)
{
    bench::PrintHeader("R3 / chaos replay",
                       "Crash-bundle replay: reproduce a recorded "
                       "first violation");
    const chaos::CrashBundleReadResult read = chaos::ReadCrashBundle(path);
    if (!read.ok) {
        std::printf("Cannot replay %s: %s\n", path.c_str(),
                    read.error.c_str());
        return 1;
    }
    const chaos::CrashBundle& bundle = read.bundle;
    std::printf("Bundle: app=%s seed=%llu actions=%zu recorded first "
                "violation at cycle %lld (%s)\n\n",
                bundle.app.c_str(),
                static_cast<unsigned long long>(bundle.scenario.seed),
                bundle.scenario.actions.size(),
                static_cast<long long>(bundle.report.first_violation_cycle),
                bundle.report.first_violation_monitor.c_str());

    const ProfileTable table = BuildTable(
        bundle.app, bundle.profile_runs, bundle.profile_seed, args.batch);
    chaos::CampaignOptions options;
    options.app = bundle.app;
    options.table = &table;
    options.target_gips = bundle.target_gips;
    options.device_seed = bundle.device_seed;
    options.spec = bundle.spec;
    options.enable_thermal = bundle.enable_thermal;
    options.controller.readback_verification = bundle.readback_verification;
    options.controller.cap_confirm_cycles = bundle.cap_confirm_cycles;
    options.controller.reengage = bundle.reengage;
    const chaos::CampaignReport replay =
        chaos::RunCampaign(options, bundle.scenario);

    const bool reproduced =
        replay.first_violation_cycle == bundle.report.first_violation_cycle &&
        replay.first_violation_monitor == bundle.report.first_violation_monitor;
    std::printf("Replay: first violation at cycle %lld (%s) — %s\n",
                static_cast<long long>(replay.first_violation_cycle),
                replay.first_violation_monitor.empty()
                    ? "none"
                    : replay.first_violation_monitor.c_str(),
                reproduced ? "REPRODUCED" : "DIVERGED");
    return reproduced ? 0 : 1;
}

}  // namespace
}  // namespace aeo

int
main(int argc, char** argv)
{
    using namespace aeo;
    SetLogLevel(LogLevel::kQuiet);
    const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
    const bool fast = args.fast;
    const uint64_t seed = args.SeedOr(kDefaultSeed);

    std::string replay_path;
    int campaigns = fast ? 4 : 8;
    std::string json_path = "BENCH_chaos_campaign.json";
    std::string bundle_path = "chaos_crash_bundle.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--replay=", 9) == 0) {
            replay_path = argv[i] + 9;
        } else if (std::strncmp(argv[i], "--campaigns=", 12) == 0) {
            campaigns = std::atoi(argv[i] + 12);
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else if (std::strncmp(argv[i], "--bundle=", 9) == 0) {
            bundle_path = argv[i] + 9;
        }
    }
    if (!replay_path.empty()) {
        return RunReplay(replay_path, args);
    }
    AEO_ASSERT(campaigns > 0, "--campaigns must be positive");

    bench::PrintHeader("R3 / chaos campaigns",
                       "Seeded compound-fault scenarios vs the invariant-"
                       "monitored controller");

    // Clean profile and target, as the §V procedure would obtain them.
    const AppScenario app_scenario = GetAppScenario(kApp);
    const ProfileTable table =
        BuildTable(kApp, args.ProfileRuns(), seed + 1000, args.batch);
    DeviceConfig default_config;
    default_config.seed = seed;
    Device default_device(default_config);
    default_device.UseDefaultGovernors();
    default_device.LaunchApp(MakeAppSpecByName(kApp));
    default_device.RunFor(app_scenario.run_duration);
    const double target = default_device.CollectResult("default").avg_gips;

    chaos::CampaignOptions options;
    options.app = kApp;
    options.table = &table;
    options.target_gips = target;
    options.spec = BenchSpec(fast);

    // Each campaign is seeded and self-contained: fan them out.
    std::vector<std::function<chaos::CampaignReport()>> tasks;
    for (int i = 0; i < campaigns; ++i) {
        const uint64_t campaign_seed = CampaignSeed(seed, i);
        tasks.push_back([&options, campaign_seed] {
            const chaos::ChaosScenario scenario =
                chaos::GenerateScenario(options.spec, campaign_seed);
            return chaos::RunCampaign(options, scenario);
        });
    }
    const std::vector<chaos::CampaignReport> reports =
        BatchRunner(args.batch).RunOrdered(std::move(tasks));

    TextTable text({"Campaign", "Seed", "Cycles", "Faults", "Degraded",
                    "Safe", "Fallback", "Violations", "First violation"});
    CsvWriter csv({"campaign", "seed", "cycles", "fault_events",
                   "degraded_cycles", "safe_mode_cycles", "reengage_count",
                   "fallback", "total_violations", "first_violation_monitor",
                   "first_violation_cycle", "energy_j", "avg_gips"});
    int first_failing = -1;
    for (size_t i = 0; i < reports.size(); ++i) {
        const chaos::CampaignReport& report = reports[i];
        if (!report.clean() && first_failing < 0) {
            first_failing = static_cast<int>(i);
        }
        const std::string first =
            report.first_violation_cycle >= 0
                ? StrFormat("%s @ cycle %lld",
                            report.first_violation_monitor.c_str(),
                            static_cast<long long>(
                                report.first_violation_cycle))
                : "-";
        text.AddRow(
            {StrFormat("%zu", i),
             StrFormat("%llu", static_cast<unsigned long long>(report.seed)),
             StrFormat("%llu", static_cast<unsigned long long>(report.cycles)),
             StrFormat("%llu",
                       static_cast<unsigned long long>(report.fault_events)),
             StrFormat("%llu", static_cast<unsigned long long>(
                                   report.degraded_cycles)),
             StrFormat("%llu", static_cast<unsigned long long>(
                                   report.safe_mode_cycles)),
             report.fallback ? "YES" : "no",
             StrFormat("%llu", static_cast<unsigned long long>(
                                   report.total_violations)),
             first});
        csv.AddRow(
            {StrFormat("%zu", i),
             StrFormat("%llu", static_cast<unsigned long long>(report.seed)),
             StrFormat("%llu", static_cast<unsigned long long>(report.cycles)),
             StrFormat("%llu",
                       static_cast<unsigned long long>(report.fault_events)),
             StrFormat("%llu", static_cast<unsigned long long>(
                                   report.degraded_cycles)),
             StrFormat("%llu", static_cast<unsigned long long>(
                                   report.safe_mode_cycles)),
             StrFormat("%llu", static_cast<unsigned long long>(
                                   report.reengage_count)),
             report.fallback ? "1" : "0",
             StrFormat("%llu", static_cast<unsigned long long>(
                                   report.total_violations)),
             report.first_violation_monitor,
             StrFormat("%lld", static_cast<long long>(
                                   report.first_violation_cycle)),
             StrFormat("%.6g", report.energy_j),
             StrFormat("%.6g", report.avg_gips)});
    }
    std::printf("%s\n", text.ToString().c_str());

    const std::string csv_path =
        args.OutputPath("robustness_chaos_campaign.csv");
    csv.WriteFile(csv_path);
    std::printf("Wrote %s\n", csv_path.c_str());

    std::ofstream snapshot(json_path);
    snapshot << SnapshotJson(args, seed, fast, reports).Dump(2) << "\n";
    snapshot.close();
    std::printf("Wrote %s\n\n", json_path.c_str());

    if (first_failing < 0) {
        std::printf("All %d campaigns clean: every invariant held.\n",
                    campaigns);
        return 0;
    }

    // --- Minimize the first failure and leave a replayable bundle ---------
    const uint64_t failing_seed = CampaignSeed(seed, first_failing);
    const chaos::ChaosScenario failing =
        chaos::GenerateScenario(options.spec, failing_seed);
    std::printf("Campaign %d violated — shrinking %zu actions...\n",
                first_failing, failing.actions.size());
    const chaos::ShrinkResult shrunk = chaos::ShrinkScenario(
        failing, [&options](const chaos::ChaosScenario& candidate) {
            return !chaos::RunCampaign(options, candidate).clean();
        });
    const chaos::CampaignReport minimal_report =
        chaos::RunCampaign(options, shrunk.scenario);

    chaos::CrashBundle bundle;
    bundle.app = kApp;
    bundle.target_gips = target;
    bundle.profile_seed = seed + 1000;
    bundle.profile_runs = args.ProfileRuns();
    bundle.device_seed = failing_seed ^ 0x5eedc0de5eedc0deull;
    bundle.enable_thermal = options.enable_thermal;
    bundle.readback_verification = options.controller.readback_verification;
    bundle.cap_confirm_cycles = options.controller.cap_confirm_cycles;
    bundle.reengage = options.controller.reengage;
    bundle.spec = options.spec;
    bundle.scenario = shrunk.scenario;
    bundle.report = minimal_report;
    if (chaos::WriteCrashBundle(bundle_path, bundle)) {
        std::printf("Shrunk to %zu action(s) in %llu probes; wrote %s\n"
                    "Replay: robustness_chaos_campaign --replay=%s\n",
                    shrunk.scenario.actions.size(),
                    static_cast<unsigned long long>(shrunk.probes),
                    bundle_path.c_str(), bundle_path.c_str());
    } else {
        std::printf("Shrunk to %zu action(s) but could not write %s\n",
                    shrunk.scenario.actions.size(), bundle_path.c_str());
    }
    return 1;
}
